"""Blocking JSON-lines client for :class:`~repro.serve.server.SageServer`.

One :class:`ServeClient` holds one TCP connection and issues one request
at a time (the server multiplexes many clients; open more clients for
client-side concurrency).  Workload objects are serialized with
:meth:`~repro.workloads.spec.MatrixWorkload.to_dict`; decisions come back
as :class:`~repro.sage.predictor.SageDecision` rebuilt from their wire
form, so downstream code cannot tell a served decision from a local one.
"""

from __future__ import annotations

import json
import socket
from typing import Mapping, Sequence

from repro.api.options import PredictOptions, WIRE_SCHEMA_VERSION
from repro.errors import ServeError
from repro.obs import current_trace_id, span
from repro.sage.predictor import SageDecision
from repro.workloads.spec import MatrixWorkload, TensorWorkload

__all__ = ["ServeClient"]

_Workload = MatrixWorkload | TensorWorkload


def _wire_workload(workload: _Workload | Mapping) -> dict:
    if isinstance(workload, (MatrixWorkload, TensorWorkload)):
        return workload.to_dict()
    return dict(workload)


def _attach_options(payload: dict, options: PredictOptions | None) -> None:
    """Ship options in the versioned schema (legacy shape when absent)."""
    if options is not None:
        payload["schema_version"] = WIRE_SCHEMA_VERSION
        payload["options"] = options.to_wire()


class ServeClient:
    """Connect to a running server and predict over the wire."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 150.0
    ) -> None:
        # The default deliberately outlasts the server's request_timeout_s
        # (120 s): a slow request should die server-side with a clean
        # in-band error, not poison this connection.
        try:
            self._sock = socket.create_connection((host, port), timeout)
        except OSError as exc:
            raise ServeError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._file = self._sock.makefile("rwb")
        self._timeout = timeout
        self._broken = False

    # ------------------------------------------------------------ transport
    def _rpc(self, payload: dict, *, scale: int = 1) -> dict:
        """One request line out, one response line in.

        ``scale`` multiplies the socket deadline for requests whose
        server-side processing time grows with payload size
        (``predict_many`` waits per workload).

        Any transport-level failure (timeout, dropped connection,
        undecodable reply) poisons the connection: a late reply could
        still be sitting in the socket buffer, and reading it on the
        next call would pair it with the wrong request.  In-band
        ``{"ok": false}`` errors keep the connection usable.
        """
        if self._broken:
            raise ServeError("connection poisoned by an earlier transport "
                             "failure; open a new ServeClient")
        trace_id = current_trace_id()
        if trace_id is not None and "trace" not in payload:
            # Both schema versions ignore unknown top-level keys, so the
            # trace ID rides every request without a version bump; the
            # server adopts it for its handler-side spans.
            payload["trace"] = trace_id
        self._sock.settimeout(self._timeout * max(1, scale))
        try:
            with span("serve.rpc", op=str(payload.get("op"))):
                self._file.write((json.dumps(payload) + "\n").encode())
                self._file.flush()
                line = self._file.readline()
        except (OSError, ValueError) as exc:  # ValueError: closed file
            self._poison()
            raise ServeError(f"transport failed: {exc}") from exc
        if not line:
            self._poison()
            raise ServeError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            self._poison()
            raise ServeError(f"malformed reply: {exc}") from exc
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    def _poison(self) -> None:
        self._broken = True
        try:
            self.close()
        except (OSError, ValueError):  # already torn down
            pass

    # ------------------------------------------------------------------ api
    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self._rpc({"op": "ping"}).get("pong"))

    def predict(
        self,
        workload: _Workload | Mapping,
        *,
        top: int | None = None,
        options: PredictOptions | None = None,
    ) -> SageDecision:
        """One decision for one workload (object or wire dict).

        ``top`` bounds the shipped ranking; ``0`` (or negative) requests
        the full ranking, ``None`` accepts the server's default prefix.
        ``options`` attaches a typed option set (search restrictions,
        fidelity tier) in the versioned wire schema; requests without
        options stay in the legacy (version-1) shape old servers accept.
        """
        payload: dict = {"op": "predict", "workload": _wire_workload(workload)}
        if top is not None:
            payload["top"] = top
        _attach_options(payload, options)
        return SageDecision.from_wire(self._rpc(payload)["decision"])

    def predict_many(
        self,
        workloads: Sequence[_Workload | Mapping],
        *,
        top: int | None = None,
        options: PredictOptions | None = None,
    ) -> list[SageDecision]:
        """Decisions for a suite, in input order, via one round trip.

        ``options`` applies to every workload in the batch.
        """
        payload: dict = {
            "op": "predict_many",
            "workloads": [_wire_workload(wl) for wl in workloads],
        }
        if top is not None:
            payload["top"] = top
        _attach_options(payload, options)
        reply = self._rpc(payload, scale=max(1, len(payload["workloads"])))
        return [SageDecision.from_wire(wire) for wire in reply["decisions"]]

    def stats(self) -> dict:
        """The server's cache/batching/shard/latency counters."""
        return self._rpc({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask the server to stop accepting and wind down gracefully."""
        self._rpc({"op": "shutdown"})

    def close(self) -> None:
        """Close this connection (the server keeps running)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
