"""Blocking client for :class:`~repro.serve.server.SageServer`.

One :class:`ServeClient` holds one TCP connection and issues one request
at a time (the server multiplexes many clients; use a
:class:`ServeClientPool` for client-side concurrency).  Two wire modes:

* ``wire="binary"`` (default) — length-prefixed frames
  (:mod:`repro.serve.wire`); ``predict`` requests travel packed and
  stamped with their config-free routing key, so a fleet router can
  shard them without parsing, and byte-identical repeats ride the
  server's encoded-reply fast path.
* ``wire="json"`` — the legacy JSON-lines protocol, byte-for-byte what
  PR-2-era clients speak.  Kept for interop and for pinning the
  compatibility contract in tests.

Transient transport failures are retried transparently: every op this
client issues is idempotent (predictions are pure functions of the
workload; ``stats``/``ping`` are reads), so a dropped connection is
reconnected and the request resent, up to ``retries`` times.  Only
``shutdown`` is never retried — the first attempt may well have
succeeded, and re-sending it to a fresh server would stop the wrong
instance.  A client whose retries are exhausted (or constructed with
``retries=0``) poisons itself exactly like the legacy client did, since
a late reply could still be sitting in the dead socket's buffer.

Workload objects are serialized with
:meth:`~repro.workloads.spec.MatrixWorkload.to_dict`; decisions come back
as :class:`~repro.sage.predictor.SageDecision` rebuilt from their wire
form, so downstream code cannot tell a served decision from a local one.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import Mapping, Sequence

from repro.api.options import PredictOptions, WIRE_SCHEMA_VERSION
from repro.errors import ServeError
from repro.obs import current_trace_id, get_logger, span
from repro.sage.predictor import SageDecision
from repro.serve import wire
from repro.serve.fingerprint import routing_key
from repro.workloads.spec import MatrixWorkload, TensorWorkload

__all__ = ["ServeClient", "ServeClientPool"]

_LOG = get_logger("serve.client")

_Workload = MatrixWorkload | TensorWorkload

WIRE_MODES = ("binary", "json")


def _wire_workload(workload: _Workload | Mapping) -> dict:
    if isinstance(workload, (MatrixWorkload, TensorWorkload)):
        return workload.to_dict()
    return dict(workload)


def _attach_options(payload: dict, options: PredictOptions | None) -> None:
    """Ship options in the versioned schema (legacy shape when absent)."""
    if options is not None:
        payload["schema_version"] = WIRE_SCHEMA_VERSION
        payload["options"] = options.to_wire()


class ServeClient:
    """Connect to a running server and predict over the wire."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 150.0,
        wire_mode: str = "binary",
        retries: int = 1,
    ) -> None:
        # The default timeout deliberately outlasts the server's
        # request_timeout_s (120 s): a slow request should die server-side
        # with a clean in-band error, not poison this connection.
        if wire_mode not in WIRE_MODES:
            raise ValueError(
                f"unknown wire_mode {wire_mode!r} "
                f"(choose from {', '.join(WIRE_MODES)})"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self.wire_mode = wire_mode
        self.retries = max(0, retries)
        self._broken = False
        self._sock: socket.socket | None = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), self._timeout
            )
        except OSError as exc:
            self._sock = None
            raise ServeError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------ transport
    def _send_recv(
        self, payload: dict, *, scale: int, key: int | None, packed: bool
    ) -> dict:
        """One attempt: request out, response in, on the configured wire."""
        assert self._sock is not None and self._file is not None
        self._sock.settimeout(self._timeout * max(1, scale))
        if self.wire_mode == "binary":
            self._file.write(
                wire.encode_frame(payload, packed=packed, routing_key=key)
            )
            self._file.flush()
            return wire.read_frame(self._file)
        self._file.write((json.dumps(payload) + "\n").encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed reply: {exc}") from exc

    def _rpc(
        self,
        payload: dict,
        *,
        scale: int = 1,
        key: int | None = None,
        packed: bool = False,
        retryable: bool = True,
    ) -> dict:
        """One request out, one response in, with transparent retry.

        ``scale`` multiplies the socket deadline for requests whose
        server-side processing time grows with payload size
        (``predict_many`` waits per workload).

        Transport-level failures (timeout, dropped connection, truncated
        or undecodable reply) on a *retryable* op trigger reconnect-and-
        resend, up to ``self.retries`` times — every op here except
        ``shutdown`` is idempotent, so a resend can at worst recompute a
        pure function.  When retries are exhausted (or disabled) the
        connection is poisoned: a late reply could still be sitting in
        the old socket's buffer, and reading it later would pair it with
        the wrong request.  In-band ``{"ok": false}`` errors keep the
        connection usable and are never retried.
        """
        if self._broken:
            raise ServeError("connection poisoned by an earlier transport "
                             "failure; open a new ServeClient")
        trace_id = current_trace_id()
        if trace_id is not None and "trace" not in payload:
            # Both schema versions ignore unknown top-level keys, so the
            # trace ID rides every request without a version bump; the
            # server adopts it for its handler-side spans.
            payload["trace"] = trace_id
        attempts = 1 + (self.retries if retryable else 0)
        last_exc: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                # Reconnect before the resend; a failure here burns this
                # attempt (the server may still be restarting).
                try:
                    self.close()
                except (OSError, ValueError):
                    pass
                try:
                    self._connect()
                except ServeError as exc:
                    last_exc = exc
                    continue
                _LOG.info(
                    "retrying %s after transport failure (attempt %d/%d)",
                    payload.get("op"), attempt + 1, attempts,
                )
            try:
                with span("serve.rpc", op=str(payload.get("op"))):
                    response = self._send_recv(
                        payload, scale=scale, key=key, packed=packed
                    )
            except (OSError, ValueError, wire.WireError, ServeError) as exc:
                last_exc = exc
                continue
            if not response.get("ok"):
                raise ServeError(response.get("error", "unknown server error"))
            return response
        self._poison()
        raise ServeError(f"transport failed: {last_exc}") from last_exc

    def _poison(self) -> None:
        self._broken = True
        try:
            self.close()
        except (OSError, ValueError):  # already torn down
            pass

    @property
    def broken(self) -> bool:
        """Whether this client has been poisoned (pool eviction probe)."""
        return self._broken

    # ------------------------------------------------------------------ api
    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self._rpc({"op": "ping"}).get("pong"))

    def predict(
        self,
        workload: _Workload | Mapping,
        *,
        top: int | None = None,
        options: PredictOptions | None = None,
    ) -> SageDecision:
        """One decision for one workload (object or wire dict).

        ``top`` bounds the shipped ranking; ``0`` (or negative) requests
        the full ranking, ``None`` accepts the server's default prefix.
        ``options`` attaches a typed option set (search restrictions,
        fidelity tier) in the versioned wire schema; requests without
        options stay in the legacy (version-1) shape old servers accept.

        On the binary wire the request travels packed and carries its
        routing key in the frame header (fleet routers shard on it).
        """
        wl_dict = _wire_workload(workload)
        payload: dict = {"op": "predict", "workload": wl_dict}
        if top is not None:
            payload["top"] = top
        _attach_options(payload, options)
        key = packed = None
        if self.wire_mode == "binary":
            packed = True
            try:
                key = routing_key(wl_dict)
            except Exception:  # noqa: BLE001 - malformed workloads stay the
                key = None  # server's to reject (in-band), not the client's
        reply = self._rpc(payload, key=key, packed=bool(packed))
        return SageDecision.from_wire(reply["decision"])

    def predict_many(
        self,
        workloads: Sequence[_Workload | Mapping],
        *,
        top: int | None = None,
        options: PredictOptions | None = None,
    ) -> list[SageDecision]:
        """Decisions for a suite, in input order, via one round trip.

        ``options`` applies to every workload in the batch.  Batches ship
        unrouted (they fan out across fingerprints anyway) and unpacked.
        """
        payload: dict = {
            "op": "predict_many",
            "workloads": [_wire_workload(wl) for wl in workloads],
        }
        if top is not None:
            payload["top"] = top
        _attach_options(payload, options)
        reply = self._rpc(payload, scale=max(1, len(payload["workloads"])))
        return [SageDecision.from_wire(w) for w in reply["decisions"]]

    def stats(self) -> dict:
        """The server's cache/batching/shard/latency counters."""
        return self._rpc({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask the server to stop accepting and wind down gracefully.

        Never retried: the first attempt may have landed, and re-sending
        after a reconnect could stop a freshly-restarted server.
        """
        self._rpc({"op": "shutdown"}, retryable=False)

    def close(self) -> None:
        """Close this connection (the server keeps running)."""
        try:
            if self._file is not None:
                self._file.close()
        finally:
            if self._sock is not None:
                self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServeClientPool:
    """A small thread-safe pool of :class:`ServeClient` connections.

    Callers that fan requests across threads (benchmarks, the experiment
    orchestrator) check a connection out per call instead of serializing
    on one socket.  Connections are created lazily up to ``size``,
    poisoned ones are discarded and replaced on the next checkout, and
    the pool's ``predict``/``predict_many``/``stats`` methods mirror the
    client API.
    """

    def __init__(
        self, host: str, port: int, *, size: int = 4, **client_kwargs
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._host = host
        self._port = port
        self.size = size
        self._client_kwargs = client_kwargs
        self._idle: queue.LifoQueue = queue.LifoQueue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False

    def _checkout(self) -> ServeClient:
        while True:
            try:
                client = self._idle.get_nowait()
            except queue.Empty:
                break
            if not client.broken:
                return client
            with self._lock:
                self._created -= 1  # replaced below or by a later checkout
        with self._lock:
            if self._closed:
                raise ServeError("pool is closed")
            if self._created < self.size:
                self._created += 1
                make = True
            else:
                make = False
        if make:
            try:
                return ServeClient(
                    self._host, self._port, **self._client_kwargs
                )
            except Exception:
                with self._lock:
                    self._created -= 1
                raise
        # At capacity: wait for a checkin (LIFO keeps hot sockets hot).
        client = self._idle.get()
        if client.broken:
            with self._lock:
                self._created -= 1
            return self._checkout()
        return client

    def _checkin(self, client: ServeClient) -> None:
        if self._closed or client.broken:
            if client.broken:
                with self._lock:
                    self._created -= 1
            else:
                client.close()
            return
        self._idle.put(client)

    def _call(self, method: str, *args, **kwargs):
        client = self._checkout()
        try:
            return getattr(client, method)(*args, **kwargs)
        finally:
            self._checkin(client)

    def ping(self) -> bool:
        return self._call("ping")

    def predict(self, workload, **kwargs) -> SageDecision:
        return self._call("predict", workload, **kwargs)

    def predict_many(self, workloads, **kwargs) -> list[SageDecision]:
        return self._call("predict_many", workloads, **kwargs)

    def stats(self) -> dict:
        return self._call("stats")

    def close(self) -> None:
        """Close every idle connection and refuse new checkouts."""
        self._closed = True
        while True:
            try:
                client = self._idle.get_nowait()
            except queue.Empty:
                return
            try:
                client.close()
            except (OSError, ValueError):
                pass

    def __enter__(self) -> "ServeClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
