"""SAGE-as-a-service: an async, batched, cached TCP prediction server.

The ROADMAP's north star is a system that serves sustained prediction
traffic; this module is the layer that turns the in-process primitives
(:class:`~repro.sage.predictor.Sage`, the memoized
:class:`~repro.mint.cost.PathPlanner`, the
:class:`~repro.serve.cache.DecisionCache`) into a long-lived service.
Stdlib only — ``asyncio`` + ``multiprocessing`` + ``threading``.

Request path
------------

1. One **asyncio event loop** (its own thread) owns every connection:
   thousands of idle clients cost file descriptors, not threads.  Each
   message's first byte picks the protocol — ``0xA5`` opens a binary
   frame (:mod:`repro.serve.wire`), anything else is a legacy JSON line
   — so old clients and ``repro stats`` keep working unchanged.
2. Framed ``predict`` requests first probe the **encoded-reply cache**:
   a repeat of a byte-identical request is answered with the previously
   framed reply — no JSON parse, no fingerprint, no ``to_wire`` — right
   on the event loop.  (Legacy lines always take the full path; the
   binary frame *is* the fast path.)
3. Everything else dispatches to a bounded worker pool where the
   request parses once and consults the :class:`DecisionCache` — hits
   (exact or density-band near-hits) are answered immediately.
4. Misses enter the **coalescing batcher**: requests arriving within
   one batch window are collected, duplicates of an already-in-flight
   fingerprint attach to the pending computation instead of dispatching
   again, and the rest fan out to the shard pool.  Each miss (and
   near-hit) also feeds the **speculative warmer**
   (:class:`~repro.serve.warmer.BandWarmer`, ``warm_bands > 0``), which
   pre-computes adjacent density bands in the background so the next
   cold request in the band becomes a hit.
5. **Shards** are persistent worker processes, each warm-seeded at
   spawn with the parent planner's :meth:`~repro.mint.cost.PathPlanner.
   export_snapshot` (routes *and* exact-stats costs) and addressed by
   the fingerprint's stable band-key hash — repeats of a workload always
   hit the same worker, so every shard's planner and local decision
   caches stay hot.  ``shards=0`` computes in-process instead (no extra
   processes; useful on platforms without ``fork``).
6. Results flow back through per-shard collector threads, populate the
   front cache, and release every waiter that coalesced onto them.

Wire protocol — binary frames (:mod:`repro.serve.wire`) or legacy
JSON-lines (one JSON object per line, response per request)::

    {"op": "predict", "workload": {...}, "top": 8}
    {"op": "predict", "schema_version": 2, "workload": {...},
     "options": {...}}
    {"op": "predict_many", "workloads": [{...}, ...]}
    {"op": "stats"} | {"op": "ping"} | {"op": "shutdown"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``;
decisions travel as :meth:`SageDecision.to_wire` dicts, and ``predict``
replies name their cache ``outcome`` (hit / near_hit / miss / bypassed).

The request schema is **versioned** (shared with :mod:`repro.api.options`):
requests without a ``schema_version`` are the PR-2-era legacy shape
(version 1) and keep working unchanged; version-2 requests may attach a
:class:`~repro.api.options.PredictOptions` wire dict under ``options``.
Unknown versions are rejected with an error naming what this server
speaks.  Requests whose options restrict the search space (or ask for a
different fidelity tier than the server's) bypass the decision cache and
the coalescing batcher — restricted decisions are workload-specific in a
way fingerprints do not capture — and are computed directly on the
worker-pool thread handling them.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import multiprocessing
import os
import queue
import threading
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.options import (
    FIDELITIES,
    PredictOptions,
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA_VERSION,
)
from repro.mint.cost import shared_planner
from repro.obs import get_logger, registry, set_trace_id, span
from repro.obs import metrics as obs_metrics
from repro.sage.predictor import Sage, SageDecision, set_proxy_operand_cache
from repro.serve import wire
from repro.serve.cache import DecisionCache
from repro.serve.fingerprint import WorkloadFingerprint, fingerprint_of
from repro.serve.warmer import BandWarmer
from repro.util.shm import SEGMENT_PREFIX, OperandCacheNamespace
from repro.workloads.spec import workload_from_dict

__all__ = ["OUTCOMES", "SageServer", "ServeConfig"]

_STOP = object()

_LOG = get_logger("serve")

#: Sentinel key prefix for in-band shard metric collection.  Prediction
#: keys are fingerprint tuples, so a *string* key can never collide.
_METRICS_KEY = "__metrics__:"

#: Cache outcomes a request can resolve with (the latency label set).
OUTCOMES = ("hit", "near_hit", "miss", "bypassed")

_REQUESTS = registry().counter(
    "repro_serve_requests_total",
    "Serve request lifecycle events (submitted/served/error/bypassed/"
    "coalesced/fast_path)",
)
_BATCHES = registry().counter(
    "repro_serve_batches_total", "Coalescing-batcher dispatch rounds"
)
_STAGE_SECONDS = registry().histogram(
    "repro_serve_stage_seconds",
    "Per-request wall-seconds by serve stage (queue/compute/total)",
)
_LATENCY = registry().histogram(
    "repro_serve_latency_seconds",
    "Request wall-seconds split by cache outcome "
    "(hit/near_hit/miss/bypassed)",
)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`SageServer`.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`SageServer.address`).
    shards:
        Persistent worker processes; ``0`` computes misses in-process.
    batch_window_ms:
        How long the batcher waits to coalesce concurrently-arriving
        misses into one dispatch round.
    max_batch:
        Upper bound on requests gathered per round.
    cache_size, near_hit:
        Front :class:`DecisionCache` capacity and whether same-density-
        band near-hits may be served (exactness off ↔ throughput up).
    ranking_top:
        Ranking prefix length shipped per decision unless the request
        asks otherwise (``top <= 0`` requests the full ranking).
    fidelity:
        Prediction tier every miss is computed at: ``"analytical"``
        (closed-form search, the default), ``"calibrated"`` (analytical
        candidates corrected by a measured per-(kernel, ACF, density-band)
        factor table — analytical latency, near-cycle ranking; the table
        must already be built for this config, see ``repro calibrate``),
        or ``"cycle"`` (the analytical top-k re-ranked on the cycle-level
        simulator).  Fidelity is a server-level property so the decision
        cache stays tier-consistent.
    latency_window:
        Number of most-recent request latencies kept for percentiles
        (overall and per cache outcome).
    request_timeout_s:
        Server-side cap on how long one request may stay in flight.
    max_inflight:
        Worker-pool width: how many requests may be *processing*
        concurrently.  Idle connections are free (the async front end
        holds them on one event loop); this bounds active work only.
    reply_cache_size:
        Encoded-reply entries kept for the framed fast path (``0``
        disables it; legacy JSON-lines requests never use it).
    warm_bands:
        Speculative warming depth: on a miss or near-hit, pre-compute
        this many adjacent density bands (each direction) plus the
        predicted-next problem size in the background.  ``0`` (default)
        disables speculation — embedded/test servers stay deterministic;
        ``repro serve`` turns it on.
    warm_queue:
        Bound on the speculative warm queue (drop-new beyond it).
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    batch_window_ms: float = 2.0
    max_batch: int = 64
    cache_size: int = 4096
    near_hit: bool = True
    ranking_top: int = 8
    fidelity: str = "analytical"
    latency_window: int = 4096
    request_timeout_s: float = 120.0
    max_inflight: int = 16
    reply_cache_size: int = 2048
    warm_bands: int = 0
    warm_queue: int = 256


class _PendingRequest:
    """One in-flight prediction: waiters block on :attr:`done`."""

    __slots__ = (
        "workload", "parsed", "fp", "done", "decision", "error", "t_submit",
        "t_dispatch", "outcome",
    )

    def __init__(self, workload: dict, parsed, fp: WorkloadFingerprint) -> None:
        self.workload = workload
        self.parsed = parsed  # the workload object, parsed once on submit
        self.fp = fp
        self.done = threading.Event()
        self.decision: SageDecision | None = None
        self.error: str | None = None
        self.t_submit = time.perf_counter()
        #: When the batcher handed the request onward (queue-stage end);
        #: stays None on cache hits and bypasses.
        self.t_dispatch: float | None = None
        #: Cache outcome label: hit / near_hit / miss / bypassed.
        self.outcome: str = "miss"


class _ReplyCache:
    """Tiny thread-safe LRU of fully-encoded reply frames.

    Keyed by the request's raw body bytes (plus its body encoding):
    byte-identical framed ``predict`` requests get byte-identical framed
    replies — decisions are pure functions of the fingerprint, so
    entries never go stale, only cold.  Near-hit replies are *not*
    cached (a later exact computation or a speculative warm may refine
    the band's answer); exact hits and computed decisions are final.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self.hits = 0

    def get(self, key: tuple) -> bytes | None:
        if self.maxsize <= 0:
            return None
        with self._lock:
            reply = self._entries.get(key)
            if reply is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            return reply

    def put(self, key: tuple, reply: bytes) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = reply
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _shard_main(
    in_q,
    out_q,
    sage: Sage,
    snapshot: dict,
    near_hit: bool,
    fidelity: str,
    operand_prefix: str | None = None,
) -> None:
    """Shard worker loop: predict forever until the ``None`` sentinel.

    Seeds this process's shared planner from the parent's snapshot and
    keeps a shard-local :class:`DecisionCache`, so a shard that has seen
    a fingerprint (or its density band) never re-runs the search even if
    the front cache has evicted it.  Under cycle fidelity the parent also
    hands every shard the name prefix of a shared operand-cache namespace:
    proxy operands for the simulator are attached from (or published to)
    warm shared-memory segments instead of being re-materialized per
    request per shard.
    """
    shared_planner().seed_snapshot(snapshot)
    # The forked child inherits the parent's metric values; zero them so
    # the in-band snapshots this shard ships cover only its own work and
    # merging them into the parent never double-counts.
    obs_metrics.reset_registry()
    if operand_prefix is not None:
        set_proxy_operand_cache(OperandCacheNamespace(operand_prefix))
    local = DecisionCache(maxsize=1024, near_hit=near_hit, scope="shard")
    while True:
        msg = in_q.get()
        if msg is None:
            out_q.put(None)
            return
        key, wl_dict = msg
        if isinstance(key, str) and key.startswith(_METRICS_KEY):
            # In-band metrics poll: answer with this shard's registry
            # snapshot through the ordinary result queue.
            out_q.put((key, obs_metrics.registry().snapshot(), None))
            continue
        try:
            workload = workload_from_dict(wl_dict)
            fp = fingerprint_of(workload, sage.config)
            decision = local.get(fp)
            if decision is None:
                with span("serve.shard_predict", workload=workload.name):
                    decision = sage.predict(workload, fidelity=fidelity)
                local.put(fp, decision)
            out_q.put((key, decision, None))
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            _LOG.warning(
                "shard %d prediction failed for %r",
                os.getpid(),
                wl_dict.get("name") if isinstance(wl_dict, dict) else wl_dict,
                exc_info=True,
            )
            out_q.put((key, None, f"{type(exc).__name__}: {exc}"))


class _Shard:
    """One worker process plus its request/response queues."""

    def __init__(
        self,
        ctx,
        sage: Sage,
        snapshot: dict,
        near_hit: bool,
        fidelity: str,
        operand_prefix: str | None = None,
    ) -> None:
        self.in_q = ctx.Queue()
        self.out_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_shard_main,
            args=(
                self.in_q, self.out_q, sage, snapshot, near_hit, fidelity,
                operand_prefix,
            ),
            daemon=True,
        )
        self.proc.start()

    def queue_depth(self) -> int | None:
        try:
            return self.in_q.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return None


class _AsyncFrontEnd:
    """One event-loop thread owning every client connection.

    Replaces the thread-per-connection ``socketserver`` front end: idle
    connections cost nothing, and the per-message first byte selects
    binary frames vs legacy JSON lines.  The owner supplies two hooks:

    * ``fast_reply(body, mode, t_recv) -> bytes | None`` — loop-side
      fast path (must not block);
    * ``handle_raw(body, mode) -> (reply_bytes, close_after)`` — full
      path, dispatched to the owner's worker pool.
    """

    def __init__(self, owner, host: str, port: int) -> None:
        self._owner = owner
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-async", daemon=True
        )

    # ----------------------------------------------------------- lifecycle
    def start(self) -> tuple[str, int]:
        self._thread.start()
        self._ready.wait()
        if self._boot_error is not None:
            raise self._boot_error
        assert self._address is not None
        return self._address

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout=5)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _quiet_cancel(loop_, context) -> None:
            # Connection tasks cancelled at shutdown are expected; the
            # default handler would log them at ERROR.
            if isinstance(context.get("exception"), asyncio.CancelledError):
                return
            loop_.default_exception_handler(context)

        loop.set_exception_handler(_quiet_cancel)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(
                    self._on_connection, self._host, self._port,
                    limit=wire.MAX_FRAME,
                )
            )
            sockname = self._server.sockets[0].getsockname()
            self._address = (str(sockname[0]), int(sockname[1]))
        except BaseException as exc:  # pragma: no cover - bind failures
            self._boot_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            try:
                if self._server is not None:
                    self._server.close()
                    loop.run_until_complete(self._server.wait_closed())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

    # ------------------------------------------------------------- traffic
    async def _read_message(self, reader) -> tuple[bytes, str] | None:
        """One message: ``(body, mode)`` or ``None`` on clean EOF.

        ``mode`` is ``"line"`` (legacy JSON line, newline stripped),
        ``"frame-json"`` or ``"frame-packed"``.  Frame integrity errors
        raise :class:`~repro.serve.wire.WireError` (frame sync is lost;
        the connection must close).
        """
        first = await reader.read(1)
        if not first:
            return None
        if first == wire.MAGIC_BYTE:
            header = first + await reader.readexactly(wire.HEADER.size - 1)
            flags, length = wire.parse_header(header)
            if flags & wire.FLAG_ROUTED:
                # Replicas ignore the routing key (the router consumed
                # it); drain it to stay frame-aligned.
                await reader.readexactly(8)
            body = await reader.readexactly(length) if length else b""
            mode = "frame-packed" if flags & wire.FLAG_PACKED else "frame-json"
            return body, mode
        line = first + await reader.readline()
        return line.strip(), "line"

    async def _on_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    message = await self._read_message(reader)
                except wire.WireError as exc:
                    # Frame sync is gone: report in-band, then hang up.
                    writer.write(wire.encode_frame(
                        {"ok": False, "error": f"WireError: {exc}"}
                    ))
                    await writer.drain()
                    break
                if message is None:
                    break
                body, mode = message
                if not body:
                    continue
                t_recv = time.perf_counter()
                reply = self._owner._fast_reply(body, mode, t_recv)
                close_after = False
                if reply is None:
                    reply, close_after = await loop.run_in_executor(
                        self._owner._executor,
                        self._owner._handle_raw, body, mode,
                    )
                writer.write(reply)
                await writer.drain()
                if close_after:
                    # The shutdown reply is on the wire; the deferred
                    # close (waiting on this event) may now stop the loop.
                    self._owner._shutdown_flushed.set()
                    break
        except (
            asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-message; nothing to answer
        except RuntimeError:  # pragma: no cover - executor shut down mid-close
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class SageServer:
    """The serving frontend: async listener, batcher, cache, shard pool.

    Typical embedded use (tests, benchmarks, notebooks)::

        with SageServer(serve=ServeConfig(port=0, shards=2)) as server:
            host, port = server.address
            ...

    or blocking from the CLI via :meth:`serve_forever`.
    """

    def __init__(
        self,
        *,
        sage: Sage | None = None,
        serve: ServeConfig | None = None,
    ) -> None:
        self.serve = serve or ServeConfig()
        if self.serve.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown serve fidelity {self.serve.fidelity!r} "
                f"(choose from {', '.join(FIDELITIES)})"
            )
        self._sage = sage or Sage()
        if self.serve.fidelity == "calibrated":
            # Fail fast at construction (not per-request inside a shard)
            # when no table exists for this config; loading here also
            # means forked shards inherit the parsed table for free.
            self._sage.ensure_calibration()
        self._cache = DecisionCache(
            self.serve.cache_size, near_hit=self.serve.near_hit, scope="front"
        )
        self._reply_cache = _ReplyCache(self.serve.reply_cache_size)
        # Cycle-fidelity servers share proxy simulator operands between
        # the parent and every shard through one named shared-memory
        # namespace: first user builds, everyone else attaches warm.
        self._operands: OperandCacheNamespace | None = None
        if self.serve.fidelity == "cycle":
            self._operands = OperandCacheNamespace(
                f"{SEGMENT_PREFIX}-serve{os.getpid()}"
            )
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._inflight: dict[tuple, list[_PendingRequest]] = {}
        self._latencies: deque[float] = deque(maxlen=self.serve.latency_window)
        self._latencies_by_outcome: dict[str, deque[float]] = {
            outcome: deque(maxlen=self.serve.latency_window)
            for outcome in OUTCOMES
        }
        self._shards: list[_Shard] = []
        self._collectors: list[threading.Thread] = []
        self._frontend: _AsyncFrontEnd | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._batcher: threading.Thread | None = None
        self._warmer: BandWarmer | None = None
        self._closed = threading.Event()
        self._shutdown_flushed = threading.Event()
        self._started = False
        self._degraded: str | None = None
        self._t_start = 0.0
        #: In-band shard metric polls awaiting replies: sentinel key ->
        #: [event, snapshot-or-None] box filled by the collector thread.
        self._metric_boxes: dict[str, list] = {}
        # Monotonic service counters (guarded by self._lock).
        self._submitted = 0
        self._served = 0
        self._errors = 0
        self._batches = 0
        self._max_batch_seen = 0
        self._coalesced = 0
        self._bypassed = 0  # restricted-options requests computed inline
        self._fast_path = 0  # framed repeats answered from the reply cache

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        """Spin up shards, batcher, and listener; return ``(host, port)``."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._t_start = time.monotonic()
        if self._operands is not None:
            # In-process (and inline-fallback) cycle predictions share the
            # same warm operand segments the shards use.
            set_proxy_operand_cache(self._operands)
        if self.serve.shards > 0:
            snapshot = shared_planner().export_snapshot()
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            try:
                for _ in range(self.serve.shards):
                    self._shards.append(
                        _Shard(
                            ctx,
                            self._sage,
                            snapshot,
                            self.serve.near_hit,
                            self.serve.fidelity,
                            self._operands.prefix
                            if self._operands is not None
                            else None,
                        )
                    )
            except (OSError, PermissionError) as exc:  # pragma: no cover
                # Platforms that cannot spawn processes at all degrade to
                # in-process compute; anything else (e.g. a genuinely
                # broken predictor) propagates.  The degradation is loud:
                # recorded here and surfaced by the stats RPC.
                for shard in self._shards:
                    shard.proc.terminate()
                self._shards = []
                self._degraded = (
                    f"shard pool unavailable ({exc}); computing in-process"
                )
        for index, shard in enumerate(self._shards):
            collector = threading.Thread(
                target=self._collect_loop,
                args=(shard,),
                name=f"serve-collector-{index}",
                daemon=True,
            )
            collector.start()
            self._collectors.append(collector)
        if self.serve.warm_bands > 0:
            self._warmer = BandWarmer(
                lambda wl: self._sage.predict(wl, fidelity=self.serve.fidelity),
                self._cache,
                config=self._sage.config,
                bands=self.serve.warm_bands,
                maxsize=self.serve.warm_queue,
            )
        self._batcher = threading.Thread(
            target=self._batch_loop, name="serve-batcher", daemon=True
        )
        self._batcher.start()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.serve.max_inflight),
            thread_name_prefix="serve-worker",
        )
        self._frontend = _AsyncFrontEnd(
            self, self.serve.host, self.serve.port
        )
        self._frontend.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` (resolves ``port=0`` ephemeral binds)."""
        if self._frontend is None or self._frontend._address is None:
            raise RuntimeError("server not started")
        return self._frontend._address

    def serve_forever(self) -> None:
        """Block until :meth:`close` is called (e.g. by a shutdown RPC)."""
        self._closed.wait()

    def _close_after_flush(self) -> None:
        """Close, but let the front end flush the shutdown reply first.

        Without the wait, stopping the event loop races the reply write
        and the client can see the connection die before the ``stopping``
        frame arrives.  The timeout covers direct ``handle_message``
        callers, where no connection ever sets the event.
        """
        self._shutdown_flushed.wait(timeout=1.0)
        self.close()

    def close(self) -> None:
        """Graceful shutdown: stop intake, fail in-flight work, reap shards."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._frontend is not None:
            self._frontend.stop()
        if self._warmer is not None:
            self._warmer.close()
        self._queue.put(_STOP)
        if self._batcher is not None:
            self._batcher.join(timeout=5)
        while True:  # requests that raced past the batcher's stop
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                item.error = "server shutting down"
                item.done.set()
        with self._lock:
            pending = list(self._inflight.values())
            self._inflight.clear()
        for waiters in pending:
            for req in waiters:
                req.error = "server shutting down"
                req.done.set()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        for shard in self._shards:
            shard.in_q.put(None)
        for collector in self._collectors:
            collector.join(timeout=5)
        for shard in self._shards:
            shard.proc.join(timeout=5)
            if shard.proc.is_alive():  # pragma: no cover - hung worker
                shard.proc.terminate()
                shard.proc.join(timeout=5)
        if self._operands is not None:
            # Shards are gone; unlink the warm operand segments so the
            # namespace never outlives the server (leak-check contract).
            set_proxy_operand_cache(None)
            self._operands.unlink_all()

    def __enter__(self) -> "SageServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- wire layer
    def _fast_reply(self, body: bytes, mode: str, t_recv: float) -> bytes | None:
        """Loop-side fast path: framed repeats answered from cached bytes.

        Legacy JSON-lines requests never take this path (the binary
        frame is the fast path; lines are the compatibility mode), and
        only byte-identical ``predict`` repeats can match.
        """
        if mode == "line":
            return None
        reply = self._reply_cache.get((mode, body))
        if reply is None:
            return None
        elapsed = time.perf_counter() - t_recv
        with self._lock:
            self._submitted += 1
            self._served += 1
            self._fast_path += 1
            self._latencies.append(elapsed)
            self._latencies_by_outcome["hit"].append(elapsed)
        _REQUESTS.inc(event="submitted")
        _REQUESTS.inc(event="served")
        _REQUESTS.inc(event="fast_path")
        _LATENCY.observe(elapsed, outcome="hit")
        _STAGE_SECONDS.observe(elapsed, stage="total")
        return reply

    def _handle_raw(self, body: bytes, mode: str) -> tuple[bytes, bool]:
        """Full path (worker pool): decode, dispatch, encode, maybe cache.

        Returns ``(reply_bytes, close_after)``; the reply rides the same
        protocol the request arrived on.
        """
        op = None
        outcome = None
        try:
            if mode == "frame-packed":
                message = wire.decode_body(body, wire.FLAG_PACKED)
            else:
                message = wire.decode_body(body, 0)
            op = message.get("op")
            response, outcome = self._handle_traced(message, op)
        except Exception as exc:  # noqa: BLE001 - reported in-band
            _LOG.warning("handler failed on op %r", op, exc_info=True)
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if mode == "line":
            reply = (json.dumps(response) + "\n").encode()
        else:
            reply = wire.encode_frame(response)
        if (
            mode != "line"
            and op == "predict"
            and response.get("ok")
            and outcome in ("hit", "miss")
        ):
            # Exact decisions are final (pure function of the
            # fingerprint); near-hit and bypass replies are not cached.
            self._reply_cache.put((mode, body), reply)
        return reply, op == "shutdown"

    # ------------------------------------------------------------- protocol
    def handle_message(self, message: dict) -> dict:
        """Dispatch one decoded request dict to its ``op`` handler."""
        return self._handle_traced(message, message.get("op"))[0]

    def _handle_traced(self, message: dict, op) -> tuple[dict, str | None]:
        trace = message.get("trace")
        if trace is not None:
            # Adopt the client's trace ID on this handler thread so spans
            # recorded while serving the request correlate with it.
            set_trace_id(str(trace))
        with span("serve.handle", op=str(op)):
            return self._handle_message(message, op)

    def _handle_message(self, message: dict, op) -> tuple[dict, str | None]:
        if op == "ping":
            return {"ok": True, "pong": True}, None
        if op == "stats":
            return {"ok": True, "stats": self.stats()}, None
        if op == "shutdown":
            threading.Thread(target=self._close_after_flush,
                             daemon=True).start()
            return {"ok": True, "stopping": True}, None
        version = message.get("schema_version", 1)
        if version not in SUPPORTED_WIRE_SCHEMAS:
            return {
                "ok": False,
                "error": (
                    f"unsupported schema_version {version!r}; this server "
                    f"speaks "
                    f"{', '.join(str(v) for v in SUPPORTED_WIRE_SCHEMAS)} "
                    f"(requests without a schema_version are treated as "
                    f"the version-1 legacy schema)"
                ),
            }, None
        options = None
        if message.get("options") is not None:
            if version < WIRE_SCHEMA_VERSION:
                return {
                    "ok": False,
                    "error": (
                        "request carries options but declares the legacy "
                        f"schema; send schema_version {WIRE_SCHEMA_VERSION}"
                    ),
                }, None
            options = PredictOptions.from_wire(message["options"])
        top = message.get("top")
        if top is None and options is not None:
            # Options speak their own ranking vocabulary: top_k=None means
            # the full ranking (the serve protocol spells that 0).
            top = 0 if options.top_k is None else options.top_k
        if op == "predict":
            workload = message.get("workload")
            if not isinstance(workload, dict):
                return {
                    "ok": False, "error": "predict needs a workload dict",
                }, None
            req = self._submit(workload, options)
            return self._reply_one(req, top), req.outcome
        if op == "predict_many":
            workloads = message.get("workloads")
            if not isinstance(workloads, list):
                return {
                    "ok": False,
                    "error": "predict_many needs a workloads list",
                }, None
            if not self._cacheable(options):
                # Restricted batches skip cache/coalescing anyway; fan them
                # across the predictor's process pool in one go instead of
                # searching serially per workload on this handler thread.
                return self._predict_many_bypass(workloads, options, top), None
            requests = [self._submit(wl, options) for wl in workloads]
            replies = [self._reply_one(req, top) for req in requests]
            failed = next((r for r in replies if not r["ok"]), None)
            if failed is not None:
                # All-or-nothing reply; the siblings that did succeed are
                # already cached, so a corrected resend costs only hits.
                return failed, None
            return {
                "ok": True,
                "decisions": [r["decision"] for r in replies],
            }, None
        return {"ok": False, "error": f"unknown op {op!r}"}, None

    def _reply_one(self, req: _PendingRequest, top) -> dict:
        if not req.done.wait(timeout=self.serve.request_timeout_s):
            # Un-wedge the fingerprint: without this, every future request
            # for the same workload would coalesce onto a computation that
            # will never resolve (e.g. a killed shard worker).
            key = req.fp.exact_key()
            with self._lock:
                waiters = self._inflight.get(key)
                if waiters is not None:
                    try:
                        waiters.remove(req)
                    except ValueError:
                        pass
                    if not waiters:
                        del self._inflight[key]
            return {"ok": False, "error": "request timed out"}
        if req.error is not None:
            with self._lock:
                self._errors += 1
            _REQUESTS.inc(event="error")
            return {"ok": False, "error": req.error}
        assert req.decision is not None
        decision = req.decision
        if decision.workload_name != req.parsed.name:
            # Cache keys exclude the (decision-irrelevant) workload name,
            # so a hit may carry another caller's label; relabel the reply.
            decision = dataclasses.replace(
                decision, workload_name=req.parsed.name
            )
        limit = self.serve.ranking_top if top is None else int(top)
        wire_decision = decision.to_wire(top=None if limit <= 0 else limit)
        with self._lock:
            self._served += 1
        _REQUESTS.inc(event="served")
        return {"ok": True, "decision": wire_decision, "outcome": req.outcome}

    # ------------------------------------------------------------ data path
    def _cacheable(self, options: PredictOptions | None) -> bool:
        """Whether cached/coalesced decisions may answer this request.

        Fingerprints ignore search restrictions, and the decision cache is
        tier-consistent at the server's configured fidelity — so only
        unrestricted requests at that fidelity (or with no tier named,
        which defers to the server's) may ride the cache/batcher.
        Hardware-override requests (``options.config`` / ``dram_gbps``,
        the tuner's fleet-evaluation path) answer for a different
        accelerator than the resident fingerprints name, so they bypass
        too — ``Sage.for_options`` derives the right predictor at the
        bypass sites.
        """
        return options is None or (
            not options.restricts_search
            and not options.overrides_hardware
            and options.fidelity in (None, self.serve.fidelity)
        )

    def _effective_options(self, options: PredictOptions) -> PredictOptions:
        """Resolve a deferred fidelity to this server's configured tier."""
        if options.fidelity is None:
            return dataclasses.replace(options, fidelity=self.serve.fidelity)
        return options

    def _predict_many_bypass(
        self,
        workloads: list,
        options: PredictOptions,
        top,
    ) -> dict:
        """Restricted batch: one pooled ``predict_many``, no cache.

        All-or-nothing like the cacheable path; nothing is cached, so a
        corrected resend re-pays the whole batch (restricted searches are
        cheap relative to the unrestricted cross-product).
        """
        t_submit = time.perf_counter()
        with self._lock:
            self._submitted += len(workloads)
            self._bypassed += len(workloads)
        _REQUESTS.inc(len(workloads), event="submitted")
        _REQUESTS.inc(len(workloads), event="bypassed")
        try:
            parsed = [workload_from_dict(wl) for wl in workloads]
            decisions = self._sage.predict_many(
                parsed, options=self._effective_options(options)
            )
        except Exception as exc:  # noqa: BLE001 - reported in-band
            _LOG.warning("restricted batch predict failed", exc_info=True)
            with self._lock:
                self._errors += 1
            _REQUESTS.inc(event="error")
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - t_submit
        limit = self.serve.ranking_top if top is None else int(top)
        with self._lock:
            self._served += len(decisions)
            self._latencies.append(elapsed)
            self._latencies_by_outcome["bypassed"].append(elapsed)
        _REQUESTS.inc(len(decisions), event="served")
        _STAGE_SECONDS.observe(elapsed, stage="total")
        _LATENCY.observe(elapsed, outcome="bypassed")
        return {
            "ok": True,
            "decisions": [
                d.to_wire(top=None if limit <= 0 else limit)
                for d in decisions
            ],
        }

    def _submit(
        self, workload: dict, options: PredictOptions | None = None
    ) -> _PendingRequest:
        """Cache-or-enqueue one workload dict; returns its pending handle."""
        parsed = workload_from_dict(workload)
        fp = fingerprint_of(parsed, self._sage.config)
        req = _PendingRequest(workload, parsed, fp)
        with self._lock:
            self._submitted += 1
        _REQUESTS.inc(event="submitted")
        if self._closed.is_set():
            # The batcher is gone; fail fast instead of timing out.
            req.error = "server shutting down"
            req.done.set()
            return req
        if not self._cacheable(options):
            # Restricted search (or an off-tier fidelity): compute on this
            # worker thread, skipping cache, coalescing and shards.  The
            # worker would block in _reply_one anyway, so this costs no
            # extra latency and keeps the cache tier-consistent.
            req.outcome = "bypassed"
            with self._lock:
                self._bypassed += 1
            _REQUESTS.inc(event="bypassed")
            try:
                with span("serve.bypass_predict", workload=parsed.name):
                    req.decision = self._sage.predict(
                        parsed, options=self._effective_options(options)
                    )
            except Exception as exc:  # noqa: BLE001 - reported in-band
                _LOG.warning(
                    "bypass predict failed for %r", parsed.name, exc_info=True
                )
                req.error = f"{type(exc).__name__}: {exc}"
            self._record_latency(req)
            req.done.set()
            return req
        cached, tier = self._cache.lookup(fp)
        if cached is not None:
            req.outcome = tier
            req.decision = cached
            if tier == "near_hit" and self._warmer is not None:
                # Near traffic predicts adjacent-band traffic: speculate.
                self._warmer.enqueue(fp)
            self._record_latency(req)
            req.done.set()
            return req
        req.outcome = "miss"
        if self._warmer is not None:
            self._warmer.enqueue(fp)
        self._queue.put(req)
        if self._closed.is_set() and not req.done.is_set():
            # close() may have drained the queue between the check above
            # and the put; fail the straggler rather than letting the
            # client wait out the full request timeout.
            req.error = "server shutting down"
            req.done.set()
        return req

    def _batch_loop(self) -> None:
        """Coalesce misses arriving within one window, then dispatch."""
        window_s = self.serve.batch_window_ms / 1000.0
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            deadline = time.monotonic() + window_s
            while len(batch) < self.serve.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._dispatch(batch)
                    return
                batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_PendingRequest]) -> None:
        with self._lock:
            self._batches += 1
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
        _BATCHES.inc()
        now = time.perf_counter()
        for req in batch:
            req.t_dispatch = now
            key = req.fp.exact_key()
            with self._lock:
                waiters = self._inflight.get(key)
                if waiters is not None:
                    # Same fingerprint already being computed: attach.
                    waiters.append(req)
                    self._coalesced += 1
                    _REQUESTS.inc(event="coalesced")
                    continue
                self._inflight[key] = [req]
            shard = (
                self._shards[req.fp.shard(len(self._shards))]
                if self._shards
                else None
            )
            if shard is not None and shard.proc.is_alive():
                shard.in_q.put((key, req.workload))
            else:
                # No shards configured, or this one died (OOM, kill):
                # don't blackhole its fingerprint partition — compute on a
                # worker thread so the request completes without stalling
                # dispatch to the healthy shards behind the search.
                threading.Thread(
                    target=self._compute_inline,
                    args=(key, req.parsed),
                    name="serve-inline",
                    daemon=True,
                ).start()

    def _compute_inline(self, key: tuple, workload) -> None:
        """Shardless fallback: run the search in this (worker) thread."""
        try:
            with span("serve.inline_predict", workload=workload.name):
                decision = self._sage.predict(
                    workload, fidelity=self.serve.fidelity
                )
        except Exception as exc:  # noqa: BLE001 - reported in-band
            _LOG.warning(
                "inline predict failed for %r", workload.name, exc_info=True
            )
            self._resolve(key, None, f"{type(exc).__name__}: {exc}")
        else:
            self._resolve(key, decision, None)

    def _collect_loop(self, shard: _Shard) -> None:
        """Drain one shard's results until its exit sentinel."""
        while True:
            msg = shard.out_q.get()
            if msg is None:
                return
            key, decision, error = msg
            if isinstance(key, str) and key.startswith(_METRICS_KEY):
                # In-band metrics reply: deliver to the waiting stats()
                # call instead of the request-resolution path.
                with self._lock:
                    box = self._metric_boxes.get(key)
                if box is not None:
                    box[1] = decision  # the shard's registry snapshot
                    box[0].set()
                continue
            self._resolve(key, decision, error)

    def _resolve(
        self, key: tuple, decision: SageDecision | None, error: str | None
    ) -> None:
        with self._lock:
            waiters = self._inflight.pop(key, [])
        if not waiters:
            return
        if decision is not None:
            self._cache.put(waiters[0].fp, decision)
        for req in waiters:
            req.decision = decision
            req.error = error
            self._record_latency(req)
            req.done.set()

    def _record_latency(self, req: _PendingRequest) -> None:
        now = time.perf_counter()
        elapsed = now - req.t_submit
        outcome = req.outcome
        with self._lock:
            self._latencies.append(elapsed)
            self._latencies_by_outcome[outcome].append(elapsed)
        _STAGE_SECONDS.observe(elapsed, stage="total")
        _LATENCY.observe(elapsed, outcome=outcome)
        if req.t_dispatch is not None:
            _STAGE_SECONDS.observe(req.t_dispatch - req.t_submit, stage="queue")
            _STAGE_SECONDS.observe(now - req.t_dispatch, stage="compute")

    # --------------------------------------------------------------- stats
    def collect_metrics(self, timeout_s: float = 1.0) -> dict:
        """Merged metrics (this process + live shards) with poll coverage.

        Each alive shard is polled in-band (a sentinel string key through
        its ordinary request queue — fingerprint keys are tuples, so the
        sentinel cannot collide) and given a shared *timeout_s* deadline;
        shards busy past the deadline simply miss this poll.  Snapshots
        merge exactly, so worker-side counters (shard-local cache events,
        SAGE candidate counts, span histograms) land in one registry view
        under ``"registry"``; ``"shards_polled"`` / ``"shards_reporting"``
        say how complete this poll was.
        """
        merged = obs_metrics.MetricRegistry()
        merged.merge_snapshot(registry().snapshot())
        boxes: list[list] = []
        for shard in self._shards:
            if not shard.proc.is_alive():
                continue
            token = f"{_METRICS_KEY}{uuid.uuid4().hex}"
            box = [threading.Event(), None, token]
            with self._lock:
                self._metric_boxes[token] = box
            shard.in_q.put((token, None))
            boxes.append(box)
        deadline = time.monotonic() + timeout_s
        reporting = 0
        for box in boxes:
            remaining = max(0.0, deadline - time.monotonic())
            if box[0].wait(timeout=remaining) and box[1] is not None:
                merged.merge_snapshot(box[1])
                reporting += 1
            with self._lock:
                self._metric_boxes.pop(box[2], None)
        return {
            "registry": merged.snapshot(),
            "shards_polled": len(boxes),
            "shards_reporting": reporting,
        }

    def stats(self) -> dict:
        """The ``stats`` RPC payload: cache, batching, shard, latency
        (overall and split by cache outcome), the speculative-warming
        counters, and the merged metrics registry (``metrics`` section)."""
        with self._lock:
            latencies = sorted(self._latencies)
            by_outcome = {
                outcome: sorted(samples)
                for outcome, samples in self._latencies_by_outcome.items()
            }
            counters = {
                "submitted": self._submitted,
                "served": self._served,
                "errors": self._errors,
                "bypassed": self._bypassed,
                "fast_path": self._fast_path,
            }
            batches = {
                "count": self._batches,
                "max_size": self._max_batch_seen,
                "coalesced": self._coalesced,
            }
        return {
            "uptime_s": time.monotonic() - self._t_start,
            "schema_versions": list(SUPPORTED_WIRE_SCHEMAS),
            "fidelity": self.serve.fidelity,
            "degraded": self._degraded,
            "requests": counters,
            "cache": self._cache.stats().to_dict(),
            "reply_cache": {
                "currsize": len(self._reply_cache),
                "maxsize": self._reply_cache.maxsize,
                "hits": self._reply_cache.hits,
            },
            "warming": (
                self._warmer.stats() if self._warmer is not None else None
            ),
            "batches": batches,
            "shards": [
                {
                    "shard": index,
                    "pid": shard.proc.pid,
                    "alive": shard.proc.is_alive(),
                    "queue_depth": shard.queue_depth(),
                }
                for index, shard in enumerate(self._shards)
            ],
            "latency_ms": _percentiles_ms(latencies),
            "latency_by_outcome_ms": {
                outcome: _percentiles_ms(samples)
                for outcome, samples in by_outcome.items()
            },
            "metrics": self.collect_metrics(),
        }


def _percentiles_ms(sorted_latencies_s: list[float]) -> dict:
    """p50/p90/p99 (milliseconds) of an ascending latency sample.

    Nearest-rank via ``ceil(q * n)``: the q-quantile is the smallest
    sample with at least ``q*n`` samples at or below it.  (``round``
    banker's-rounds half cases down and under-selects — p90 of 5 samples
    picked index 3, the 80th percentile.)
    """
    out: dict = {"count": len(sorted_latencies_s)}
    n = len(sorted_latencies_s)
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        if not n:
            out[label] = None
            continue
        index = min(n - 1, max(0, math.ceil(q * n) - 1))
        out[label] = sorted_latencies_s[index] * 1e3
    return out
