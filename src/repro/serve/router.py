"""Consistent-hash replica router: N SageServers behind one address.

One accelerator's serving capacity tops out at one process; the fleet
answer is N :class:`~repro.serve.server.SageServer` replicas behind a
single :class:`SageRouter` address.  The router shards traffic on the
workload's **routing key** (:func:`~repro.serve.fingerprint.routing_key`
— config-free, density-banded, client-computable), so every workload
band has exactly one home replica and that replica's decision cache,
shard-local planners, and speculative warmer stay hot for its key range.

The relay is deliberately dumb and fast: binary clients stamp the
routing key in the frame header (``FLAG_ROUTED``), so the router reads
16 bytes, picks a replica off the hash ring, and relays the frame
*verbatim* — no JSON parse, no payload decode, no re-encoding in either
direction.  Legacy JSON-lines clients still work: their requests are
parsed at the router (the one place the fleet pays the JSON tax) and
relayed as lines.

Consistent hashing (virtual nodes on a BLAKE2 ring) keeps rebalancing
local: when a replica is marked down by the health checker, only its
arc of the ring moves to the survivors, and requests mid-flight fail
over to the next node in ring order (**miss-forwarding**) rather than
erroring back to the client.

Router-level ops: ``ping`` answers locally; ``stats`` aggregates every
replica's stats under one payload (plus a ``fleet`` section describing
the ring); ``shutdown`` cascades to owned replicas and then stops the
router itself.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs import get_logger, registry
from repro.serve import wire
from repro.serve.client import ServeClient
from repro.serve.fingerprint import routing_key
from repro.serve.server import (
    SageServer,
    ServeConfig,
    _AsyncFrontEnd,
    _ReplyCache,
)

__all__ = ["HashRing", "RouterConfig", "SageRouter"]

_LOG = get_logger("serve.router")

_RELAYS = registry().counter(
    "repro_serve_router_relays_total",
    "Router relay events (frame/line/local/edge_hit/forwarded/failed)",
)

#: Replica replies are framed JSON with compact separators, so a final
#: cache outcome appears as one of these exact byte strings.  Only final
#: outcomes may be memoized at the edge; a near-hit answer can still be
#: refined once the band's exact decision lands.
_FINAL_OUTCOMES = (b'"outcome":"hit"', b'"outcome":"miss"')


def _is_final_reply(reply: bytes) -> bool:
    return any(marker in reply for marker in _FINAL_OUTCOMES)


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is planted at ``vnodes`` pseudo-random points (BLAKE2 of
    ``"{node}#{i}"``), and a key maps to the first node clockwise from
    its own hash.  Adding or removing one node moves only ~``1/N`` of
    the key space — the property that makes replica loss a local event.
    """

    def __init__(self, nodes=(), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode hashes
        self._owners: dict[int, str] = {}  # vnode hash -> node
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(label: str) -> int:
        digest = hashlib.blake2s(label.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = self._hash(f"{node}#{i}")
            if point in self._owners:  # vanishing-probability collision
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        dead = [p for p, owner in self._owners.items() if owner == node]
        for point in dead:
            del self._owners[point]
        dead_set = set(dead)
        self._points = [p for p in self._points if p not in dead_set]

    def node_for(self, key: int) -> str | None:
        """The node owning *key*, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, key) % len(self._points)
        return self._owners[self._points[index]]

    def nodes_for(self, key: int, count: int) -> list[str]:
        """Up to *count* distinct nodes in ring order from *key*.

        The first entry is the key's owner; the rest are its failover
        sequence (the nodes its arc would rebalance onto).
        """
        if not self._points or count <= 0:
            return []
        out: list[str] = []
        start = bisect.bisect_right(self._points, key)
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owners[point]
            if owner not in out:
                out.append(owner)
                if len(out) >= count:
                    break
        return out


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of one :class:`SageRouter`.

    Attributes
    ----------
    host, port:
        The fleet's public bind address (``port=0`` = ephemeral).
    replicas:
        How many :class:`SageServer` replicas to boot in-process when no
        external ``addresses`` are given.
    vnodes:
        Virtual nodes per replica on the hash ring.
    health_interval_s:
        Period of the background replica health check (framed ``ping``);
        a failed probe removes the replica from the ring, a succeeding
        one restores it.
    health_timeout_s:
        Per-probe deadline.
    reply_cache_size:
        Edge cache: final reply frames memoized at the router, keyed by
        the request's raw body bytes, so byte-identical hot requests are
        answered without a replica round trip (``0`` disables).  Same
        admission rule as the replica-side reply cache — only replies
        naming a *final* outcome (exact hit or computed miss) are kept;
        near-hit answers may still be refined by warming.
    serve:
        Template :class:`ServeConfig` for owned replicas (host/port are
        overridden per replica with ephemeral binds).
    """

    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 2
    vnodes: int = 64
    health_interval_s: float = 2.0
    health_timeout_s: float = 1.0
    reply_cache_size: int = 4096
    serve: ServeConfig = field(default_factory=ServeConfig)


class _RouterFrontEnd(_AsyncFrontEnd):
    """The router's event loop: same boot/stop, relay-centric handler."""

    async def _on_connection(self, reader, writer) -> None:
        owner = self._owner
        try:
            while True:
                first = await reader.read(1)
                if not first:
                    break
                close_after = False
                if first == wire.MAGIC_BYTE:
                    try:
                        reply, close_after = await owner._route_frame(
                            reader, first
                        )
                    except wire.WireError as exc:
                        writer.write(wire.encode_frame(
                            {"ok": False, "error": f"WireError: {exc}"}
                        ))
                        await writer.drain()
                        break
                else:
                    line = first + await reader.readline()
                    line = line.strip()
                    if not line:
                        continue
                    reply, close_after = await owner._route_line(line)
                writer.write(reply)
                await writer.drain()
                if close_after:
                    # Shutdown reply flushed; the cascade thread waits on
                    # this before tearing the loop down.
                    owner._shutdown_flushed.set()
                    break
        except (
            asyncio.IncompleteReadError, ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass
        except RuntimeError:  # pragma: no cover - loop torn down mid-close
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class SageRouter:
    """N replicas, one address, zero-parse frame relay.

    Owned-fleet use (the CLI's ``repro serve --replicas N``)::

        with SageRouter(router=RouterConfig(replicas=2)) as fleet:
            host, port = fleet.address
            ...

    or front external replicas by address::

        SageRouter(addresses=[("10.0.0.5", 7070), ("10.0.0.6", 7070)])
    """

    def __init__(
        self,
        *,
        router: RouterConfig | None = None,
        addresses: list[tuple[str, int]] | None = None,
    ) -> None:
        self.router = router or RouterConfig()
        self._external = [(h, int(p)) for h, p in (addresses or [])]
        self._servers: list[SageServer] = []  # owned replicas
        self._addresses: dict[str, tuple[str, int]] = {}
        self._ring = HashRing(vnodes=self.router.vnodes)
        self._down: set[str] = set()
        self._pools: dict[str, deque] = {}  # node -> idle (reader, writer)
        self._reply_cache = _ReplyCache(self.router.reply_cache_size)
        self._frontend: _RouterFrontEnd | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._health_task = None
        self._closed = threading.Event()
        self._shutdown_flushed = threading.Event()
        self._started = False
        self._t_start = 0.0
        self._lock = threading.Lock()
        # Relay counters (guarded by self._lock).
        self._frames = 0  # keyed frames relayed without a payload parse
        self._edge_hits = 0  # answered from the router's reply cache
        self._parsed = 0  # requests the router had to decode to route
        self._local = 0  # ops answered at the router (ping/stats/shutdown)
        self._forwarded = 0  # failovers onto the next ring node
        self._failed = 0  # requests no replica could answer

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        """Boot replicas (unless external), the ring, and the listener."""
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self._t_start = time.monotonic()
        if self._external:
            for host, port in self._external:
                self._addresses[f"{host}:{port}"] = (host, port)
        else:
            if self.router.replicas < 1:
                raise ValueError("a fleet needs at least one replica")
            for index in range(self.router.replicas):
                server = SageServer(
                    serve=dataclasses.replace(
                        self.router.serve, host="127.0.0.1", port=0
                    )
                )
                address = server.start()
                self._servers.append(server)
                self._addresses[f"replica-{index}"] = address
        for node in self._addresses:
            self._ring.add(node)
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="router-worker"
        )
        self._frontend = _RouterFrontEnd(
            self, self.router.host, self.router.port
        )
        address = self._frontend.start()
        loop = self._frontend._loop
        assert loop is not None
        loop.call_soon_threadsafe(
            lambda: setattr(
                self, "_health_task", loop.create_task(self._health_loop())
            )
        )
        return address

    @property
    def address(self) -> tuple[str, int]:
        if self._frontend is None or self._frontend._address is None:
            raise RuntimeError("router not started")
        return self._frontend._address

    @property
    def replica_addresses(self) -> dict[str, tuple[str, int]]:
        """Node name -> ``(host, port)`` for every fleet member."""
        return dict(self._addresses)

    def serve_forever(self) -> None:
        self._closed.wait()

    def close(self) -> None:
        """Stop the listener, reap owned replicas, drop replica sockets."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._frontend is not None:
            self._frontend.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        for server in self._servers:
            server.close()

    def __enter__(self) -> "SageRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------- replica relays
    async def _acquire(self, node: str):
        """An open ``(reader, writer)`` to *node* (pooled, else fresh)."""
        pool = self._pools.setdefault(node, deque())
        while pool:
            reader, writer = pool.popleft()
            if not writer.is_closing():
                return reader, writer
        host, port = self._addresses[node]
        return await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=wire.MAX_FRAME),
            timeout=5.0,
        )

    def _release(self, node: str, conn) -> None:
        self._pools.setdefault(node, deque()).append(conn)

    def _drop_node_pool(self, node: str) -> None:
        for _, writer in self._pools.pop(node, ()):  # close idle sockets
            writer.close()

    def _mark_down(self, node: str) -> None:
        if node in self._down:
            return
        self._down.add(node)
        self._ring.remove(node)
        self._drop_node_pool(node)
        _LOG.warning("replica %s marked down; ring rebalanced", node)

    def _mark_up(self, node: str) -> None:
        if node not in self._down:
            return
        self._down.discard(node)
        self._ring.add(node)
        _LOG.info("replica %s recovered; ring restored", node)

    async def _read_reply_frame(self, reader) -> bytes:
        """One raw reply frame off a replica connection (no decode)."""
        header = await reader.readexactly(wire.HEADER.size)
        flags, length = wire.parse_header(header)
        extra = b""
        if flags & wire.FLAG_ROUTED:  # pragma: no cover - replicas don't
            extra = await reader.readexactly(8)
        body = await reader.readexactly(length) if length else b""
        return header + extra + body

    async def _relay(
        self, key: int, request: bytes, mode: str
    ) -> bytes | None:
        """Send *request* to the key's owner, failing over in ring order.

        ``mode`` is ``"frame"`` (raw frame bytes in/out) or ``"line"``
        (JSON line in/out).  Returns the raw reply bytes, or ``None`` if
        every live replica refused the connection (the caller answers the
        client with an in-band error).
        """
        candidates = self._ring.nodes_for(key, len(self._addresses))
        for attempt, node in enumerate(candidates):
            try:
                reader, writer = await self._acquire(node)
            except (OSError, asyncio.TimeoutError):
                self._mark_down(node)
                continue
            try:
                writer.write(request)
                await writer.drain()
                if mode == "frame":
                    reply = await self._read_reply_frame(reader)
                else:
                    reply = await reader.readline()
                    if not reply:
                        raise ConnectionError("replica closed mid-request")
            except (
                OSError, asyncio.IncompleteReadError, wire.WireError,
                ConnectionError,
            ):
                writer.close()
                self._mark_down(node)
                continue
            self._release(node, (reader, writer))
            if attempt:
                with self._lock:
                    self._forwarded += 1
                _RELAYS.inc(event="forwarded")
            return reply
        with self._lock:
            self._failed += 1
        _RELAYS.inc(event="failed")
        return None

    # -------------------------------------------------------- request paths
    async def _route_frame(self, reader, first: bytes) -> tuple[bytes, bool]:
        """One framed request: relay verbatim if keyed, else decode-route."""
        header = first + await reader.readexactly(wire.HEADER.size - 1)
        flags, length = wire.parse_header(header)
        raw_key = b""
        key: int | None = None
        if flags & wire.FLAG_ROUTED:
            raw_key = await reader.readexactly(8)
            key = wire.parse_routing_key(raw_key)
        body = await reader.readexactly(length) if length else b""
        request = header + raw_key + body
        if key is not None:
            # The fast path this whole module exists for: 16 bytes read,
            # zero payload bytes parsed, frame relayed byte-for-byte.
            cache_key = (flags & wire.FLAG_PACKED, body)
            cached = self._reply_cache.get(cache_key)
            if cached is not None:
                with self._lock:
                    self._edge_hits += 1
                _RELAYS.inc(event="edge_hit")
                return cached, False
            with self._lock:
                self._frames += 1
            _RELAYS.inc(event="frame")
            reply = await self._relay(key, request, "frame")
            if reply is None:
                return self._error_frame("no live replica for request"), False
            if _is_final_reply(reply):
                # Edge memoization: decisions are pure functions of the
                # request bytes, and final (hit/miss) outcomes never
                # change — the next byte-identical request skips the
                # replica round trip entirely.  Near-hit replies are not
                # kept (speculative warming may refine the band).
                self._reply_cache.put(cache_key, reply)
            return reply, False
        # Unkeyed frame: decode the payload to find out where it goes.
        payload = wire.decode_body(body, flags)
        op = payload.get("op")
        if op in ("ping", "stats", "shutdown"):
            response, close_after = await self._local_op(op)
            return wire.encode_frame(response), close_after
        key = self._payload_key(payload)
        if key is None:
            return self._error_frame(f"cannot route op {op!r}"), False
        with self._lock:
            self._parsed += 1
        _RELAYS.inc(event="parsed")
        reply = await self._relay(key, request, "frame")
        if reply is None:
            return self._error_frame("no live replica for request"), False
        return reply, False

    async def _route_line(self, line: bytes) -> tuple[bytes, bool]:
        """One legacy JSON line: parse (the slow path), route, relay."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return self._error_line(f"undecodable request: {exc}"), False
        op = payload.get("op")
        if op in ("ping", "stats", "shutdown"):
            response, close_after = await self._local_op(op)
            return (json.dumps(response) + "\n").encode(), close_after
        key = self._payload_key(payload)
        if key is None:
            return self._error_line(f"cannot route op {op!r}"), False
        with self._lock:
            self._parsed += 1
        _RELAYS.inc(event="line")
        reply = await self._relay(key, line + b"\n", "line")
        if reply is None:
            return self._error_line("no live replica for request"), False
        return reply, False

    def _payload_key(self, payload: dict) -> int | None:
        """Routing key from a decoded payload (predict / predict_many)."""
        op = payload.get("op")
        try:
            if op == "predict" and isinstance(payload.get("workload"), dict):
                return routing_key(payload["workload"])
            if op == "predict_many":
                workloads = payload.get("workloads")
                # A batch fans across fingerprints anyway; home the whole
                # round trip on the first workload's band.
                if isinstance(workloads, list) and workloads:
                    return routing_key(workloads[0])
        except Exception:  # noqa: BLE001 - malformed workload
            return None
        return None

    async def _local_op(self, op: str) -> tuple[dict, bool]:
        """Ops the router answers itself (off-loop for the blocking ones)."""
        with self._lock:
            self._local += 1
        _RELAYS.inc(event="local")
        if op == "ping":
            return {"ok": True, "pong": True}, False
        loop = asyncio.get_running_loop()
        if op == "stats":
            stats = await loop.run_in_executor(self._executor, self.stats)
            return {"ok": True, "stats": stats}, False
        # shutdown: reply first, then cascade off-thread.
        threading.Thread(target=self._shutdown_fleet, daemon=True).start()
        return {"ok": True, "stopping": True}, True

    def _shutdown_fleet(self) -> None:
        # Let the front end flush the "stopping" reply before the teardown
        # closes the loop under it.
        self._shutdown_flushed.wait(timeout=1.0)
        for node, (host, port) in list(self._addresses.items()):
            if self._servers:
                continue  # owned replicas close via close() below
            try:  # external replicas get the shutdown op
                with ServeClient(host, port, retries=0) as client:
                    client.shutdown_server()
            except Exception:  # noqa: BLE001 - best-effort cascade
                _LOG.warning("shutdown relay to %s failed", node)
        self.close()

    @staticmethod
    def _error_frame(message: str) -> bytes:
        return wire.encode_frame({"ok": False, "error": message})

    @staticmethod
    def _error_line(message: str) -> bytes:
        return (json.dumps({"ok": False, "error": message}) + "\n").encode()

    # -------------------------------------------------------- health checks
    async def _health_loop(self) -> None:
        ping = wire.encode_frame({"op": "ping"})
        while not self._closed.is_set():
            await asyncio.sleep(self.router.health_interval_s)
            for node in list(self._addresses):
                try:
                    host, port = self._addresses[node]
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        timeout=self.router.health_timeout_s,
                    )
                    try:
                        writer.write(ping)
                        await writer.drain()
                        await asyncio.wait_for(
                            self._read_reply_frame(reader),
                            timeout=self.router.health_timeout_s,
                        )
                    finally:
                        writer.close()
                except (OSError, asyncio.TimeoutError, wire.WireError,
                        asyncio.IncompleteReadError):
                    self._mark_down(node)
                else:
                    self._mark_up(node)

    # --------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Aggregated fleet stats: ring + relay counters + every replica.

        Top-level ``requests`` and ``cache`` sections are element-wise
        sums across replicas (the shapes the single-server payload uses),
        so fleet-unaware tooling still reads sensible totals; per-replica
        detail (latency percentiles included) nests under
        ``fleet.replicas``.
        """
        replicas = []
        for node, (host, port) in self._addresses.items():
            entry: dict = {
                "node": node,
                "address": f"{host}:{port}",
                "down": node in self._down,
            }
            try:
                with ServeClient(host, port, retries=0, timeout=5.0) as c:
                    entry["stats"] = c.stats()
            except Exception as exc:  # noqa: BLE001 - down replica
                entry["error"] = str(exc)
            replicas.append(entry)
        requests: dict = {}
        cache: dict = {}
        outcome_samples: dict = {}
        for entry in replicas:
            stats = entry.get("stats")
            if not stats:
                continue
            for section, sums in (("requests", requests), ("cache", cache)):
                for name, value in stats.get(section, {}).items():
                    if isinstance(value, (int, float)):
                        sums[name] = sums.get(name, 0) + value
            for outcome, pct in stats.get(
                "latency_by_outcome_ms", {}
            ).items():
                bucket = outcome_samples.setdefault(
                    outcome, {"count": 0, "p99": None}
                )
                bucket["count"] += pct.get("count", 0)
                if pct.get("p99") is not None:
                    bucket["p99"] = max(bucket["p99"] or 0.0, pct["p99"])
        if "hit_rate" in cache:  # summed rates are meaningless; recompute
            lookups = (
                cache.get("hits", 0) + cache.get("near_hits", 0)
                + cache.get("misses", 0)
            )
            cache["hit_rate"] = (
                (cache.get("hits", 0) + cache.get("near_hits", 0)) / lookups
                if lookups else 0.0
            )
        with self._lock:
            relay = {
                "frames": self._frames,
                "edge_hits": self._edge_hits,
                "parsed": self._parsed,
                "local": self._local,
                "forwarded": self._forwarded,
                "failed": self._failed,
            }
        return {
            "uptime_s": time.monotonic() - self._t_start,
            "fleet": {
                "replicas": replicas,
                "ring": {
                    "nodes": sorted(self._ring.nodes),
                    "vnodes": self._ring.vnodes,
                    "down": sorted(self._down),
                },
                "relay": relay,
            },
            "requests": requests,
            "cache": cache,
            "latency_by_outcome_ms": outcome_samples,
        }
