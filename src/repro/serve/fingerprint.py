"""Canonical workload fingerprints: the cache key of the serve layer.

A fingerprint summarizes exactly the inputs SAGE's decision depends on —
kernel, dimensions, nonzero counts, datatype, and the accelerator
configuration (Sec. VI: "the inputs to SAGE are workload size, datatype,
density region ... and accelerator hardware parameters").  Two workloads
with equal fingerprints are guaranteed the same decision, so the service
may answer the second from cache.

Two key granularities are exposed:

* :meth:`WorkloadFingerprint.exact_key` — every statistic verbatim; a hit
  is bit-for-bit the decision SAGE would have computed.
* :meth:`WorkloadFingerprint.band_key` — nonzero counts replaced by their
  power-of-two density band (the same bucketing the
  :class:`~repro.mint.cost.PathPlanner` route cache uses).  Workloads in
  the same band share DRAM-footprint ordering to within a factor of two,
  so serving a banded neighbour's decision is the "near-hit" mode of
  :class:`~repro.serve.cache.DecisionCache`.

Fingerprints also pin each workload to a shard: :meth:`shard` hashes the
band key with a keyed BLAKE2 digest (stable across processes and runs,
unlike the salted builtin ``hash``), so repeats of a workload always land
on the same warm worker.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass, fields
from typing import Mapping

from repro.accelerator.config import AcceleratorConfig
from repro.mint.cost import _size_class
from repro.workloads.spec import MatrixWorkload, TensorWorkload

__all__ = [
    "WorkloadFingerprint",
    "config_digest",
    "density_band",
    "fingerprint_of",
    "routing_key",
]


def density_band(nnz: int) -> int:
    """Power-of-two nonzero bucket: operands within 2x share a band.

    Deliberately the same bucketing as the
    :class:`~repro.mint.cost.PathPlanner` route cache, so a near-hit in
    this layer corresponds to a route-cache hit below it.
    """
    return _size_class(nnz)


@functools.lru_cache(maxsize=64)
def config_digest(config: AcceleratorConfig) -> str:
    """Stable short digest of every accelerator-config field.

    Memoized (configs are frozen dataclasses) — a server fingerprints
    every request against the same config, so the field walk + hash runs
    once per distinct configuration, not once per request.
    """
    payload = ",".join(
        f"{f.name}={getattr(config, f.name)!r}" for f in fields(config)
    )
    return hashlib.blake2s(payload.encode(), digest_size=8).hexdigest()


@dataclass(frozen=True)
class WorkloadFingerprint:
    """Canonical identity of one (workload, accelerator) prediction.

    ``dims`` carries every extent the cost model reads: ``(m, k, n)`` for
    matrices, ``(x, y, z, rank)`` for tensors.  ``nnz`` is per-operand
    (``(nnz_a, nnz_b)`` / ``(nnz,)``).
    """

    kind: str  # "matrix" | "tensor"
    kernel: str
    dims: tuple[int, ...]
    nnz: tuple[int, ...]
    dtype_bits: int
    config: str  # accelerator-config digest

    def __post_init__(self) -> None:
        if self.kind not in ("matrix", "tensor"):
            raise ValueError(f"unknown workload kind {self.kind!r}")

    @property
    def bands(self) -> tuple[int, ...]:
        """Per-operand density band (power-of-two nnz bucket)."""
        return tuple(density_band(n) for n in self.nnz)

    @property
    def dim_bands(self) -> tuple[int, ...]:
        """Per-extent power-of-two bucket (same coarsening as nnz bands)."""
        return tuple(density_band(d) for d in self.dims)

    def exact_key(self) -> tuple:
        """Hashable key with exact statistics (lossless cache hits)."""
        return (
            self.kind, self.kernel, self.dims, self.nnz, self.dtype_bits,
            self.config,
        )

    def band_key(self) -> tuple:
        """Hashable key with dims *and* nnz coarsened to power-of-two bands.

        Exact dims used to be part of this key, which made near hits
        unobservable in practice: real suites (Table III) have no two
        workloads with identical extents, so the banded tier never
        collided and ``near_hits`` stayed 0.  Workloads within 2x on
        every extent and every nonzero count share DRAM-footprint
        ordering, which is the contract the near-hit mode needs.
        """
        return (
            self.kind, self.kernel, self.dim_bands, self.bands,
            self.dtype_bits, self.config,
        )

    def shard(self, shards: int) -> int:
        """Stable shard assignment in ``[0, shards)`` from the band key.

        Banded (not exact) so near-identical workloads warm the same
        shard-local caches.
        """
        if shards <= 1:
            return 0
        digest = hashlib.blake2s(
            repr(self.band_key()).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % shards


def routing_key(
    workload: MatrixWorkload | TensorWorkload | Mapping,
) -> int:
    """Config-free 64-bit shard key over the workload's density bands.

    Clients stamp this into the binary frame header (``FLAG_ROUTED``) so
    the consistent-hash router can pick a replica without parsing the
    payload.  It deliberately bands every statistic the way
    :meth:`WorkloadFingerprint.band_key` does — workloads within 2x on
    every extent and nonzero count route to the same replica, keeping
    that replica's decision cache (and its near-hit tier) hot for the
    key range — but it excludes the accelerator-config digest, which a
    client has no way to know and which is constant per fleet anyway.
    """
    if isinstance(workload, Mapping):
        from repro.workloads.spec import workload_from_dict

        workload = workload_from_dict(workload)
    if isinstance(workload, TensorWorkload):
        key = (
            "tensor",
            workload.kernel.value,
            tuple(density_band(d) for d in (*workload.shape, workload.rank)),
            (density_band(workload.nnz),),
            workload.dtype_bits,
        )
    else:
        key = (
            "matrix",
            workload.kernel.value,
            tuple(density_band(d) for d in (workload.m, workload.k,
                                            workload.n)),
            (density_band(workload.nnz_a), density_band(workload.nnz_b)),
            workload.dtype_bits,
        )
    digest = hashlib.blake2s(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def fingerprint_of(
    workload: MatrixWorkload | TensorWorkload | Mapping,
    config: AcceleratorConfig | None = None,
) -> WorkloadFingerprint:
    """Fingerprint a workload (object or wire dict) under *config*.

    The workload *name* is deliberately excluded: it does not influence
    the decision, and keying on it would defeat cross-caller caching.
    """
    if isinstance(workload, Mapping):
        from repro.workloads.spec import workload_from_dict

        workload = workload_from_dict(workload)
    digest = config_digest(config or AcceleratorConfig.paper_default())
    if isinstance(workload, TensorWorkload):
        return WorkloadFingerprint(
            kind="tensor",
            kernel=workload.kernel.value,
            dims=(*workload.shape, workload.rank),
            nnz=(workload.nnz,),
            dtype_bits=workload.dtype_bits,
            config=digest,
        )
    return WorkloadFingerprint(
        kind="matrix",
        kernel=workload.kernel.value,
        dims=(workload.m, workload.k, workload.n),
        nnz=(workload.nnz_a, workload.nnz_b),
        dtype_bits=workload.dtype_bits,
        config=digest,
    )
