"""Binary wire frame for the serve tier, with JSON-lines auto-detection.

The serve protocol started as JSON-lines: one ``{"op": ...}`` object per
line, one reply line per request.  That shape survives unchanged as the
**legacy mode** — but every byte of it pays ``json.dumps``/``loads`` and
a newline scan per request, which is measurable at serving rates.  This
module adds the compact framed alternative the fleet speaks natively:

``magic (2B) | version (1B) | flags (1B) | body length (4B)`` —
``struct`` packed, network byte order — optionally followed by an 8-byte
**routing key** (``FLAG_ROUTED``) and then the body.  The body is the
*same* versioned JSON payload the legacy mode carries (``FLAG_PACKED``
clear), or a msgpack-style packed encoding of it (``FLAG_PACKED`` set)
used by clients for the small, hot ``predict`` request where a binary
walk beats building a JSON string.  Replies are framed JSON: the C-level
``json`` codec outruns any pure-Python packer on decision-sized payloads,
and framing (not encoding) is what the reply path needs — a framed reply
can be cached and relayed as raw bytes without ever re-encoding.

The routing key rides *outside* the body so the consistent-hash router
(:mod:`repro.serve.router`) can shard a request onto its replica without
parsing the payload at all: read 16 bytes, pick a replica, relay the
frame verbatim.

Auto-detection is one byte: frames open with ``0xA5`` (never the first
byte of a JSON document), so a server peeks the first byte of each
message and speaks whichever protocol the client chose — old clients and
``repro stats`` keep working against a fleet front end.

Frame integrity errors raise :class:`WireError` (a
:class:`~repro.errors.ServeError`): bad magic, unknown wire version,
bodies over :data:`MAX_FRAME`, truncated frames, or packed bodies that
do not decode.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO

from repro.errors import ServeError

__all__ = [
    "FLAG_PACKED",
    "FLAG_ROUTED",
    "HEADER",
    "MAGIC",
    "MAGIC_BYTE",
    "MAX_FRAME",
    "WIRE_VERSION",
    "WireError",
    "decode_body",
    "encode_frame",
    "frame_for_body",
    "pack",
    "parse_header",
    "read_frame",
    "unpack",
]


class WireError(ServeError):
    """A binary frame is malformed, truncated, oversized, or unknown."""


#: Frame magic.  The leading byte (``0xA5``) can never open a JSON
#: document (JSON starts with ``{ [ " 0-9 t f n -`` or whitespace), so
#: one peeked byte distinguishes framed from legacy traffic.
MAGIC = 0xA55E
MAGIC_BYTE = bytes([MAGIC >> 8])

#: Version of the *frame layout* (independent of the payload's
#: ``schema_version``, which keeps its own negotiation).
WIRE_VERSION = 1

#: ``magic | version | flags | body length``, network byte order.
HEADER = struct.Struct("!HBBI")

FLAG_PACKED = 0x01  #: body is msgpack-style packed (else UTF-8 JSON)
FLAG_ROUTED = 0x02  #: an 8-byte routing key follows the header

#: Upper bound on one frame body; anything larger is rejected before a
#: single body byte is read (a garbage length must not stall the
#: connection buffering gigabytes).
MAX_FRAME = 16 * 1024 * 1024

_ROUTING_KEY = struct.Struct("!Q")


# --------------------------------------------------------------- packed body
#
# A deliberately small msgpack-style codec: type-tagged, length-prefixed,
# self-contained (no third-party deps in this repo).  It covers exactly
# the JSON data model (None/bool/int/float/str/list/dict, plus bytes)
# because the packed body *is* the JSON payload in binary form.

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"  # signed 64-bit
_TAG_BIGINT = b"I"  # decimal string fallback (arbitrary precision)
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def _pack_varint(value: int, out: list[bytes]) -> None:
    """Unsigned LEB128 (7 bits per byte, high bit = continue)."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes([byte | 0x80]))
        else:
            out.append(bytes([byte]))
            return


def _pack_into(obj, out: list[bytes]) -> None:
    if obj is None:
        out.append(_TAG_NONE)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif isinstance(obj, int):
        if _I64_MIN <= obj <= _I64_MAX:
            out.append(_TAG_INT)
            out.append(_I64.pack(obj))
        else:
            text = str(obj).encode()
            out.append(_TAG_BIGINT)
            _pack_varint(len(text), out)
            out.append(text)
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.append(_F64.pack(obj))
    elif isinstance(obj, str):
        raw = obj.encode()
        out.append(_TAG_STR)
        _pack_varint(len(raw), out)
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _pack_varint(len(obj), out)
        out.append(bytes(obj))
    elif isinstance(obj, (list, tuple)):
        out.append(_TAG_LIST)
        _pack_varint(len(obj), out)
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, dict):
        out.append(_TAG_DICT)
        _pack_varint(len(obj), out)
        for key, value in obj.items():
            if not isinstance(key, str):
                raise WireError(
                    f"packed dict keys must be str, got {type(key).__name__}"
                )
            _pack_into(key, out)
            _pack_into(value, out)
    else:
        raise WireError(f"cannot pack {type(obj).__name__} values")


def pack(obj) -> bytes:
    """Pack a JSON-shaped object into the msgpack-style binary body."""
    out: list[bytes] = []
    _pack_into(obj, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("packed body truncated")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def varint(self) -> int:
        value = shift = 0
        while True:
            byte = self.take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireError("packed varint overlong")


def _unpack_from(reader: _Reader):
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _TAG_BIGINT:
        return int(reader.take(reader.varint()))
    if tag == _TAG_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.varint()).decode()
    if tag == _TAG_BYTES:
        return reader.take(reader.varint())
    if tag == _TAG_LIST:
        return [_unpack_from(reader) for _ in range(reader.varint())]
    if tag == _TAG_DICT:
        return {
            _unpack_from(reader): _unpack_from(reader)
            for _ in range(reader.varint())
        }
    raise WireError(f"unknown packed tag {tag!r}")


def unpack(data: bytes):
    """Inverse of :func:`pack`; rejects trailing garbage."""
    reader = _Reader(data)
    obj = _unpack_from(reader)
    if reader.pos != len(data):
        raise WireError(
            f"packed body has {len(data) - reader.pos} trailing byte(s)"
        )
    return obj


# -------------------------------------------------------------------- frames
def encode_body(payload: dict, *, packed: bool = False) -> tuple[bytes, int]:
    """Encode one payload dict; returns ``(body, flags)``."""
    if packed:
        return pack(payload), FLAG_PACKED
    return json.dumps(payload, separators=(",", ":")).encode(), 0


def decode_body(body: bytes, flags: int) -> dict:
    """Decode a frame body back into its payload dict."""
    if flags & FLAG_PACKED:
        payload = unpack(body)
    else:
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WireError(f"undecodable JSON frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(
            f"frame body must decode to an object, got "
            f"{type(payload).__name__}"
        )
    return payload


def frame_for_body(
    body: bytes, flags: int = 0, *, routing_key: int | None = None
) -> bytes:
    """Wrap already-encoded body bytes in a frame (relay fast path)."""
    if len(body) > MAX_FRAME:
        raise WireError(
            f"frame body {len(body)} bytes exceeds MAX_FRAME {MAX_FRAME}"
        )
    if routing_key is not None:
        flags |= FLAG_ROUTED
        header = HEADER.pack(MAGIC, WIRE_VERSION, flags, len(body))
        return header + _ROUTING_KEY.pack(routing_key & 0xFFFFFFFFFFFFFFFF) \
            + body
    return HEADER.pack(MAGIC, WIRE_VERSION, flags & ~FLAG_ROUTED, len(body)) \
        + body


def encode_frame(
    payload: dict, *, packed: bool = False, routing_key: int | None = None
) -> bytes:
    """One payload dict -> one complete frame (header [+key] + body)."""
    body, flags = encode_body(payload, packed=packed)
    return frame_for_body(body, flags, routing_key=routing_key)


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate 8 header bytes; returns ``(flags, body_length)``."""
    if len(header) != HEADER.size:
        raise WireError(
            f"short frame header ({len(header)}/{HEADER.size} bytes)"
        )
    magic, version, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic 0x{magic:04x}")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if length > MAX_FRAME:
        raise WireError(
            f"frame body {length} bytes exceeds MAX_FRAME {MAX_FRAME}"
        )
    return flags, length


def routing_key_bytes(key: int) -> bytes:
    """The 8-byte wire form of a routing key."""
    return _ROUTING_KEY.pack(key & 0xFFFFFFFFFFFFFFFF)


def parse_routing_key(raw: bytes) -> int:
    """Inverse of :func:`routing_key_bytes`."""
    if len(raw) != _ROUTING_KEY.size:
        raise WireError("truncated routing key")
    return _ROUTING_KEY.unpack(raw)[0]


def read_frame(stream: BinaryIO) -> dict:
    """Read one complete frame from a blocking file-like stream.

    Returns the decoded payload dict; raises :class:`WireError` on EOF
    mid-frame or a malformed header/body.  (The client side of the
    protocol — the async server reads frames on its own event loop.)
    """
    header = stream.read(HEADER.size)
    if not header:
        raise WireError("connection closed before a frame header")
    flags, length = parse_header(header)
    if flags & FLAG_ROUTED:
        raw = stream.read(_ROUTING_KEY.size)
        if len(raw) != _ROUTING_KEY.size:
            raise WireError("frame truncated inside its routing key")
        parse_routing_key(raw)
    body = stream.read(length) if length else b""
    if len(body) != length:
        raise WireError(
            f"frame truncated ({len(body)}/{length} body bytes)"
        )
    return decode_body(body, flags)
