"""Thread-safe LRU cache of SAGE decisions, keyed by workload fingerprint.

The serve front end consults this before dispatching anything to a shard:
SAGE is a pure function of the fingerprint, so a hit skips the entire
MCF/ACF search.  Two hit tiers exist:

* **exact** — the fingerprint's full statistics match a cached entry;
* **near** (optional) — no exact entry, but a workload in the same
  per-operand density band has been decided; its decision is served
  instead.  Within a band, operand footprints agree to within 2x, so the
  chosen formats are almost always identical — the classic
  accuracy-for-latency trade a production service wants switchable.

Eviction is LRU over *exact* entries; the band index tracks the
most-recently-decided representative per band.  All counters are
monotonic and exposed through :meth:`DecisionCache.stats` for the
server's ``stats`` RPC.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import registry
from repro.serve.fingerprint import WorkloadFingerprint

if TYPE_CHECKING:  # pragma: no cover
    from repro.sage.predictor import SageDecision

__all__ = ["CacheStats", "DecisionCache"]

#: Per-instance counters stay (CacheStats is part of the stats RPC shape);
#: every event is *also* mirrored onto the process-global metric registry
#: so merged serve metrics include shard-local cache activity.
_CACHE_EVENTS = registry().counter(
    "repro_serve_cache_events_total",
    "DecisionCache lookups/evictions, by cache scope and event",
)


@dataclass(frozen=True)
class CacheStats:
    """Monotonic counters plus occupancy of one :class:`DecisionCache`."""

    hits: int
    near_hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.near_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Served-from-cache fraction (exact + near) of all lookups."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.near_hits) / self.lookups

    def to_dict(self) -> dict:
        """JSON-safe form for the ``stats`` RPC."""
        return {
            "hits": self.hits,
            "near_hits": self.near_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": self.currsize,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class DecisionCache:
    """LRU ``fingerprint -> SageDecision`` map with a density-band tier."""

    def __init__(
        self,
        maxsize: int = 4096,
        *,
        near_hit: bool = False,
        scope: str = "local",
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.near_hit = near_hit
        self.scope = scope
        self._lock = threading.Lock()
        #: exact key -> (decision, band key); the band rides along so
        #: eviction can clean its index entry in O(1).
        self._exact: OrderedDict[tuple, tuple["SageDecision", tuple]] = (
            OrderedDict()
        )
        #: band key -> exact key of the band's latest decided representative
        self._bands: dict[tuple, tuple] = {}
        self._hits = 0
        self._near_hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, fp: WorkloadFingerprint) -> "SageDecision | None":
        """The cached decision for *fp*, or ``None`` on a miss.

        Exact entries win; with ``near_hit`` enabled, a same-band
        representative is served (and counted separately) when no exact
        entry exists.
        """
        return self.lookup(fp)[0]

    def lookup(
        self, fp: WorkloadFingerprint
    ) -> "tuple[SageDecision | None, str]":
        """Like :meth:`get`, but also names the outcome tier.

        Returns ``(decision, "hit")`` / ``(decision, "near_hit")`` /
        ``(None, "miss")`` so callers can attribute latency per cache
        outcome instead of inferring the tier from counter deltas.
        """
        exact = fp.exact_key()
        with self._lock:
            entry = self._exact.get(exact)
            if entry is not None:
                self._exact.move_to_end(exact)
                self._hits += 1
                _CACHE_EVENTS.inc(scope=self.scope, event="hit")
                return entry[0], "hit"
            if self.near_hit:
                rep = self._bands.get(fp.band_key())
                if rep is not None and rep in self._exact:
                    self._exact.move_to_end(rep)
                    self._near_hits += 1
                    _CACHE_EVENTS.inc(scope=self.scope, event="near_hit")
                    return self._exact[rep][0], "near_hit"
            self._misses += 1
            _CACHE_EVENTS.inc(scope=self.scope, event="miss")
            return None, "miss"

    def has_band(self, band_key: tuple) -> bool:
        """Whether *any* live entry covers this band key (no counters).

        The speculative warmer probes this before spending a search on a
        band the cache already answers.
        """
        with self._lock:
            rep = self._bands.get(band_key)
            return rep is not None and rep in self._exact

    def put(self, fp: WorkloadFingerprint, decision: "SageDecision") -> None:
        """Insert (or refresh) the decision for *fp*."""
        exact = fp.exact_key()
        band = fp.band_key()
        with self._lock:
            self._exact[exact] = (decision, band)
            self._exact.move_to_end(exact)
            self._bands[band] = exact
            while len(self._exact) > self.maxsize:
                evicted_key, (_, evicted_band) = self._exact.popitem(
                    last=False
                )
                self._evictions += 1
                _CACHE_EVENTS.inc(scope=self.scope, event="eviction")
                # Drop the band pointer if the eviction left it dangling.
                if self._bands.get(evicted_band) == evicted_key:
                    del self._bands[evicted_band]

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._exact.clear()
            self._bands.clear()
            self._hits = self._near_hits = 0
            self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._exact)

    def stats(self) -> CacheStats:
        """Snapshot the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                near_hits=self._near_hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._exact),
                maxsize=self.maxsize,
            )
