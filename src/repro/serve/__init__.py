"""``repro.serve`` — SAGE as a batched, cached, sharded prediction fleet.

The serving subsystem (stdlib only) layered over the in-process predictor:

* :mod:`repro.serve.fingerprint` — canonical workload identity (kernel,
  dims, nnz, dtype, accelerator-config digest) with exact and
  density-band keys, stable shard assignment, and the config-free
  :func:`~repro.serve.fingerprint.routing_key` fleet routers shard on;
* :mod:`repro.serve.cache` — thread-safe LRU
  :class:`~repro.serve.cache.DecisionCache` with hit/miss/eviction
  counters and an optional near-hit tier;
* :mod:`repro.serve.wire` — the length-prefixed binary frame (and its
  packed body codec) with one-byte auto-detection against the legacy
  JSON-lines protocol;
* :mod:`repro.serve.server` — the async-front-end TCP
  :class:`~repro.serve.server.SageServer`: request coalescing, an
  encoded-reply fast path, a shard pool of warm-seeded worker
  processes, outcome-split latency, and a ``stats`` RPC;
* :mod:`repro.serve.warmer` — speculative
  :class:`~repro.serve.warmer.BandWarmer` pre-computing adjacent
  density bands on misses;
* :mod:`repro.serve.router` — the consistent-hash
  :class:`~repro.serve.router.SageRouter` fronting N replicas behind
  one address with health checks and miss-forwarding;
* :mod:`repro.serve.client` — the blocking
  :class:`~repro.serve.client.ServeClient` (binary wire, transparent
  retry) and :class:`~repro.serve.client.ServeClientPool`.

Quickstart::

    from repro.serve import SageServer, ServeClient, ServeConfig

    with SageServer(serve=ServeConfig(port=0, shards=2)) as server:
        with ServeClient(*server.address) as client:
            decision = client.predict(workload)

or a fleet::

    from repro.serve import RouterConfig, SageRouter

    with SageRouter(router=RouterConfig(replicas=2)) as fleet:
        with ServeClient(*fleet.address) as client:
            decision = client.predict(workload)

or from a shell: ``python -m repro serve --port 7342 --replicas 2``.
Most callers should go through the
:class:`~repro.api.session.Session` facade (``Session("tcp://host:port")``),
which fronts this client and the in-process predictor with one
backend-transparent surface.  The request schema is versioned and shared
with :mod:`repro.api.options`; legacy (version-1) workload dicts remain
accepted, and legacy JSON-lines clients interoperate with fleets
unchanged.
"""

from repro.serve.cache import CacheStats, DecisionCache
from repro.serve.client import ServeClient, ServeClientPool
from repro.serve.fingerprint import (
    WorkloadFingerprint,
    config_digest,
    density_band,
    fingerprint_of,
    routing_key,
)
from repro.serve.router import HashRing, RouterConfig, SageRouter
from repro.serve.server import OUTCOMES, SageServer, ServeConfig
from repro.serve.warmer import BandWarmer, warm_candidates
from repro.serve.wire import WireError

__all__ = [
    "BandWarmer",
    "CacheStats",
    "DecisionCache",
    "HashRing",
    "OUTCOMES",
    "RouterConfig",
    "SageRouter",
    "SageServer",
    "ServeClient",
    "ServeClientPool",
    "ServeConfig",
    "WireError",
    "WorkloadFingerprint",
    "config_digest",
    "density_band",
    "fingerprint_of",
    "routing_key",
    "warm_candidates",
]
