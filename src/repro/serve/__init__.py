"""``repro.serve`` — SAGE as a batched, cached, sharded prediction service.

The serving subsystem (stdlib only) layered over the in-process predictor:

* :mod:`repro.serve.fingerprint` — canonical workload identity (kernel,
  dims, nnz, dtype, accelerator-config digest) with exact and
  density-band keys plus stable shard assignment;
* :mod:`repro.serve.cache` — thread-safe LRU
  :class:`~repro.serve.cache.DecisionCache` with hit/miss/eviction
  counters and an optional near-hit tier;
* :mod:`repro.serve.server` — the JSON-lines TCP
  :class:`~repro.serve.server.SageServer`: request coalescing, a shard
  pool of warm-seeded worker processes, and a ``stats`` RPC;
* :mod:`repro.serve.client` — the blocking
  :class:`~repro.serve.client.ServeClient`.

Quickstart::

    from repro.serve import SageServer, ServeClient, ServeConfig

    with SageServer(serve=ServeConfig(port=0, shards=2)) as server:
        with ServeClient(*server.address) as client:
            decision = client.predict(workload)

or from a shell: ``python -m repro serve --port 7342``.  Most callers
should go through the :class:`~repro.api.session.Session` facade
(``Session("tcp://host:port")``), which fronts this client and the
in-process predictor with one backend-transparent surface.  The request
schema is versioned and shared with :mod:`repro.api.options`; legacy
(version-1) workload dicts remain accepted.
"""

from repro.serve.cache import CacheStats, DecisionCache
from repro.serve.client import ServeClient
from repro.serve.fingerprint import (
    WorkloadFingerprint,
    config_digest,
    density_band,
    fingerprint_of,
)
from repro.serve.server import SageServer, ServeConfig

__all__ = [
    "CacheStats",
    "DecisionCache",
    "SageServer",
    "ServeClient",
    "ServeConfig",
    "WorkloadFingerprint",
    "config_digest",
    "density_band",
    "fingerprint_of",
]
