"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
``sage``
    Run SAGE on a workload described by its statistics and print the
    decision ranking (``--tensor`` for 3-D workloads, ``--fidelity cycle``
    to validate the analytical top-k on the cycle-level simulator,
    ``--backend tcp://host:port`` to answer from a running server).
``run``
    The end-to-end pipeline on one matrix workload: SAGE decision, MINT
    conversion along the planned route, cycle-level simulation — one
    :class:`~repro.api.result.RunResult` report.
``serve``
    Run the batched, cached SAGE prediction server (``repro.serve``).
``sweep``
    Print the Fig. 4-style compactness sweep for a matrix shape.
``walkthrough``
    Render the Fig. 6 bus traces (Dense / CSR / COO) cycle by cycle.
``suite``
    Run the Table II policy comparison on one Table III workload.
``xp``
    The experiment orchestrator (``repro.xp``): ``xp list`` the
    registered paper figure/table/ablation experiments, ``xp run`` a
    selection (or ``--all``) across the fork pool with artifact-store
    caching (``--resume`` / ``--force`` / ``--smoke``), ``xp report``
    re-renders the markdown reports from the store.
``calibrate``
    Build (or ``--inspect``) the calibrated-fidelity factor table: the
    SAGE analytical cost model regressed against the cycle simulator
    over a named training grid (``--suite tiny|smoke|full``), persisted
    in the artifact store keyed on the accelerator-config digest.
``stats``
    Pretty-print a running server's ``stats`` RPC — request/cache/batch
    counters, latency percentiles, and the merged metrics registry
    (front process plus every shard worker).
``paths``
    Print the registered conversion graph and the cost-aware route the
    planner chooses for a given operand size.

``sage``, ``suite``, ``sweep`` and ``stats`` accept ``--json``, emitting
one machine-readable JSON document on stdout instead of the human
tables.  Prediction commands go through the
:class:`~repro.api.session.Session` facade, so ``--backend`` swaps
in-process search for a remote server without changing anything else.

Observability (``repro.obs``) hooks: the global ``--log-level`` flag
configures stdlib logging (same levels as the ``REPRO_LOG`` env var);
``run --trace out.json`` and ``xp run --trace`` export Chrome
trace-event JSON of the spans the pipeline recorded (open in
``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np


def _emit_json(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")


def _cli_matrix_workload(args: argparse.Namespace):
    from repro.workloads.spec import Kernel, MatrixWorkload

    name = args.kernel or "spmm"
    nnz_a = int(args.density * args.m * args.k)
    nnz_b = (
        args.k * args.n
        if name == "spmm"
        else max(1, int(args.density * args.k * args.n))
    )
    return MatrixWorkload(
        name="cli",
        kernel=Kernel.SPMM if name == "spmm" else Kernel.SPGEMM,
        m=args.m,
        k=args.k,
        n=args.n,
        nnz_a=max(1, nnz_a),
        nnz_b=nnz_b,
    )


def _cmd_sage(args: argparse.Namespace) -> int:
    from repro.api import PredictOptions, Session
    from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload

    if args.tensor:
        if args.fidelity != "analytical":
            raise SystemExit(
                f"--fidelity {args.fidelity} needs a matrix workload "
                "(3-D tensor kernels are analytical-only)"
            )
        name = args.kernel or "spttm"
        if name == "spttm":
            kernel = Kernel.SPTTM
        elif name == "mttkrp":
            kernel = Kernel.MTTKRP
        else:
            raise SystemExit("--tensor supports --kernel spttm or mttkrp")
        shape = (args.i, args.j, args.k)
        nnz = max(1, int(args.density * shape[0] * shape[1] * shape[2]))
        wl: MatrixWorkload | TensorWorkload = TensorWorkload(
            name="cli",
            kernel=kernel,
            shape=shape,
            nnz=nnz,
            # Sec. VII-A default: rank = first mode / 2.
            rank=args.rank if args.rank else max(1, args.i // 2),
        )
    elif args.kernel in ("spttm", "mttkrp"):
        raise SystemExit(f"--kernel {args.kernel} needs --tensor")
    else:
        wl = _cli_matrix_workload(args)
    with Session(args.backend) as session:
        decision = session.predict(
            wl, PredictOptions(fidelity=args.fidelity)
        )
    if args.json:
        _emit_json(decision.to_wire(top=args.top))
    else:
        print(decision.summary(top=args.top))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import PredictOptions, RunOptions, Session

    wl = _cli_matrix_workload(args)
    opts = RunOptions(
        predict=PredictOptions(fidelity=args.fidelity),
        seed=args.seed,
        engine=args.engine,
    )
    if args.trace:
        from repro.obs import export_chrome_trace, start_trace, stop_trace

        start_trace()
        try:
            with Session(args.backend) as session:
                result = session.run(wl, opts)
        finally:
            events = stop_trace()
        export_chrome_trace(events, args.trace)
        print(f"trace: {len(events)} span(s) -> {args.trace}",
              file=sys.stderr)
    else:
        with Session(args.backend) as session:
            result = session.run(wl, opts)
    if args.json:
        _emit_json(
            {
                "decision": result.decision.to_wire(top=args.top),
                "sim_scale": result.sim_scale,
                "conversion_cycles": result.conversion_cycles,
                "cycles": result.cycles,
                "energy_j": result.energy_j,
                "edp": result.edp,
                "verified": result.verified,
            }
        )
    else:
        print(result.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import RouterConfig, SageRouter, SageServer, ServeConfig

    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        batch_window_ms=args.batch_window_ms,
        cache_size=args.cache_size,
        near_hit=not args.exact,
        ranking_top=args.top,
        fidelity=args.fidelity,
        warm_bands=args.warm_bands,
    )
    mode = "exact-only" if args.exact else "near-hit"
    warm = (
        f"warming {args.warm_bands} band(s)" if args.warm_bands else
        "no warming"
    )
    if args.replicas > 1:
        server = SageRouter(
            router=RouterConfig(
                host=args.host, port=args.port, replicas=args.replicas,
                serve=serve_config,
            )
        )
        host, port = server.start()
        print(
            f"repro serve fleet listening on {host}:{port} "
            f"({args.replicas} replica(s) x {args.shards} shard(s), "
            f"{mode} cache, {args.fidelity} fidelity, {warm}; Ctrl-C or "
            f'an {{"op": "shutdown"}} request stops the fleet)',
            flush=True,  # supervisors watching a pipe need the banner now
        )
    else:
        server = SageServer(serve=serve_config)
        host, port = server.start()
        print(
            f"repro serve listening on {host}:{port} "
            f"({args.shards} shard(s), {mode} cache, "
            f"{args.fidelity} fidelity, {warm}; Ctrl-C or a "
            f'{{"op": "shutdown"}} request stops it)',
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.close()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.compactness import transfer_energy_sweep
    from repro.formats.registry import Format

    fmts = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC,
            Format.ZVC]
    densities = [10.0 ** e for e in range(-8, 0)] + [0.25, 0.5, 0.75, 1.0]
    sweep = transfer_energy_sweep(
        (args.m, args.k), densities, fmts, args.bits
    )
    if args.json:
        _emit_json(
            {
                "shape": [args.m, args.k],
                "dtype_bits": args.bits,
                "formats": [f.value for f in fmts],
                "rows": [
                    {
                        "density": d,
                        "relative_energy": {
                            f.value: sweep[f][i] for f in fmts
                        },
                        "best": min(fmts, key=lambda f: sweep[f][i]).value,
                    }
                    for i, d in enumerate(densities)
                ],
            }
        )
        return 0
    print(f"{'density':>9} | " + " ".join(f"{f.value:>7}" for f in fmts) + " | best")
    for i, d in enumerate(densities):
        vals = {f: sweep[f][i] for f in fmts}
        best = min(vals, key=vals.get)
        print(
            f"{d:>9.0e} | "
            + " ".join(f"{vals[f]:>7.3f}" for f in fmts)
            + f" | {best.value}"
        )
    return 0


def _cmd_walkthrough(args: argparse.Namespace) -> int:
    from repro.accelerator.trace import render_stream_trace
    from repro.formats import CooMatrix, CsrMatrix, DenseMatrix
    from repro.formats.registry import Format

    a = np.zeros((4, 8))
    a[0, 0], a[0, 2], a[0, 4], a[3, 5] = 1.0, 2.0, 3.0, 4.0
    for fmt, cls in [
        (Format.DENSE, DenseMatrix),
        (Format.CSR, CsrMatrix),
        (Format.COO, CooMatrix),
    ]:
        print(render_stream_trace(cls.from_dense(a), fmt, args.bus))
        print()
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.baselines import evaluate_all
    from repro.workloads import Kernel, suite_by_name

    entry = suite_by_name(args.workload)
    kernel = Kernel.SPMM if args.kernel == "spmm" else Kernel.SPGEMM
    results = evaluate_all(entry.matrix_workload(kernel))
    ours = results["Flex_Flex_HW"].edp
    ranked = sorted(results.items(), key=lambda kv: kv[1].edp)
    if args.json:
        _emit_json(
            {
                "workload": entry.name,
                "kernel": kernel.value,
                "density_pct": entry.density_pct,
                "baseline": "Flex_Flex_HW",
                "policies": [
                    {
                        "policy": name,
                        "edp_vs_baseline": result.edp / ours,
                        "best": result.best.to_wire(),
                    }
                    for name, result in ranked
                ],
            }
        )
        return 0
    print(f"{entry.name} ({entry.density_pct:g}% dense, {kernel.value}):")
    for name, result in ranked:
        b = result.best
        print(
            f"  {name:>15}: {result.edp / ours:9.2f}x  "
            f"MCF=({b.mcf[0].value},{b.mcf[1].value}) "
            f"ACF=({b.acf[0].value},{b.acf[1].value})"
        )
    return 0


def _cmd_xp(args: argparse.Namespace) -> int:
    from repro.xp import (
        RunConfig,
        all_experiments,
        default_out_dir,
        run_experiments,
    )

    if args.xp_command == "list":
        experiments = all_experiments(kind=args.kind)
        if args.json:
            _emit_json(
                {
                    "experiments": [
                        {
                            "name": e.name,
                            "kind": e.kind,
                            "anchor": e.anchor,
                            "title": e.title,
                            "cells": len(e.scenarios()),
                            "smoke_cells": len(e.scenarios(smoke=True)),
                        }
                        for e in experiments
                    ]
                }
            )
            return 0
        print(f"{'experiment':<24} {'kind':<9} {'anchor':<16} "
              f"{'cells':>5} {'smoke':>5}  title")
        for e in experiments:
            print(
                f"{e.name:<24} {e.kind:<9} {e.anchor:<16} "
                f"{len(e.scenarios()):>5} {len(e.scenarios(smoke=True)):>5}"
                f"  {e.title}"
            )
        return 0

    if args.xp_command == "report":
        # Pure re-render: answer from the store only, never execute —
        # uncached cells are skipped and reported, not measured.
        names = args.experiments or None
        summary = run_experiments(
            names,
            RunConfig(
                backend=args.backend,  # remote grids key on the server spec
                smoke=args.smoke,
                cached_only=True,
                store_root=args.store,
                out_dir=args.out,
                record=False,
            ),
        )
        out = args.out or default_out_dir()
        print(f"wrote {out}/report.md ({summary.cached_cells} cells from "
              f"cache, {summary.skipped_cells} not cached — "
              f"run 'repro xp run' to measure them)")
        return 0 if summary.ok else 1

    # xp run
    if not args.experiments and not args.all:
        raise SystemExit("name experiments to run, or pass --all")
    names = None if args.all else args.experiments
    config = RunConfig(
        backend=args.backend,
        processes=1 if args.serial else args.processes,
        smoke=args.smoke,
        resume=args.resume,
        force=args.force,
        isolate=args.isolate,
        store_root=args.store,
        out_dir=args.out,
        report=not args.no_report,
        transport=args.transport,
    )
    if args.trace:
        from repro.obs import export_chrome_trace, start_trace, stop_trace
        from pathlib import Path

        start_trace()
        try:
            summary = run_experiments(names, config)
        finally:
            events = stop_trace()
        trace_path = Path(args.out or default_out_dir()) / "trace.json"
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        export_chrome_trace(events, trace_path)
        print(f"trace: {len(events)} span(s) -> {trace_path}",
              file=sys.stderr)
    else:
        summary = run_experiments(names, config)
    if args.json:
        _emit_json(summary.record())
        return 0 if summary.ok else 1
    for run in summary.experiments:
        print(
            f"{run.experiment.name:<24} {len(run.cells):>4} cells "
            f"({run.cached} cached, {run.executed} measured) "
            f"{run.elapsed_s:7.2f}s  {run.status}"
        )
    print(
        f"\n{summary.total_cells} cells in {summary.wall_s:.2f}s wall "
        f"({summary.executed_cells} measured, {summary.cached_cells} from "
        f"cache, {summary.failed_cells} failed; summed cell time "
        f"{summary.serial_cell_s:.2f}s)"
    )
    if not args.no_report:
        out = args.out or default_out_dir()
        print(f"report: {out}/report.md")
    return 0 if summary.ok else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import TuneConfig, TunePoint, run_tune, space
    from repro.xp import default_out_dir

    space_name = args.space or "smoke"
    suite = args.suite or "smoke"
    if args.smoke:
        # The CI entry point: pin the CI-sized space and suite.
        space_name, suite = "smoke", "smoke"
    config = TuneConfig(
        suite=suite,
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        backend=args.backend,
        processes=1 if args.serial else args.processes,
        transport=args.transport,
        resume=args.resume,
        force=args.force,
        include_seeds=not args.no_seeds,
        store_root=args.store,
        out_dir=args.out or default_out_dir(),
        report=not args.no_report,
    )
    result = run_tune(space(space_name), config)
    if args.json:
        _emit_json(result.record())
        return 0 if result.ok else 1
    print(
        f"swept {len(result.entries)} configs "
        f"({result.executed} executed, {result.cached} from cache, "
        f"{result.pruned} pruned, {result.failed} failed) "
        f"in {result.wall_s:.2f}s — front {len(result.front)}, "
        f"hypervolume {result.hypervolume:.3f}"
    )
    anchor = result.anchor
    if anchor is not None and anchor.ok:
        marker = (
            "on the front"
            if any(result.entries[i].is_anchor for i in result.front)
            else "dominated"
        )
        print(
            f"anchor paper_default: cycles {anchor.result['cycles']} "
            f"energy {anchor.result['energy_j']:.4g} J "
            f"area {anchor.result['area_mm2']:.4g} mm2 ({marker})"
        )
    shown = result.front_entries()[: args.top]
    for entry in shown:
        extra = " (paper_default)" if entry.is_anchor else ""
        print(
            f"  * {entry.point.label()}{extra}: "
            f"cycles {entry.result['cycles']} "
            f"energy {entry.result['energy_j']:.4g} J "
            f"area {entry.result['area_mm2']:.4g} mm2 "
            f"edp {entry.result['edp']:.3e}"
        )
    if len(result.front) > len(shown):
        print(f"  ... and {len(result.front) - len(shown)} more front points")
    for entry in result.entries:
        if entry.error is not None:
            print(f"  ! {entry.point.label()}: {entry.error}", file=sys.stderr)
    if not args.no_report:
        out = args.out or default_out_dir()
        print(f"report: {out}/xp/tune_pareto.md")
    return 0 if result.ok else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.accelerator.config import AcceleratorConfig
    from repro.sage.calibrate import GRIDS, build_table, load_table
    from repro.xp.artifacts import ArtifactStore

    store = ArtifactStore(args.store) if args.store else ArtifactStore()
    config = AcceleratorConfig.paper_default()
    if args.inspect:
        table = load_table(store, config)
        if table is None:
            print(
                "no (non-stale) calibration table for this accelerator "
                "config — build one with 'repro calibrate'",
                file=sys.stderr,
            )
            return 1
        if args.json:
            _emit_json(table.to_dict())
        else:
            print(table.summary())
        return 0
    suite = "smoke" if args.smoke else (args.suite or "smoke")
    build = build_table(
        GRIDS[suite],
        store=store,
        config=config,
        resume=args.resume,
        force=args.force,
    )
    if args.json:
        _emit_json(build.record())
        return 0
    print(
        f"calibrated {build.workloads} workloads on grid {build.grid!r} "
        f"({build.executed} executed, {build.cached} from cache) "
        f"in {build.wall_s:.2f}s -> {len(build.table.cells)} cells"
    )
    print(f"table: {build.table_path}")
    worst = max(
        (stats.p95_rel_err for stats in build.table.cells.values()),
        default=0.0,
    )
    print(f"worst per-cell p95 relative error: {worst:.4f}")
    return 0


def _render_fleet_stats(stats: dict) -> str:
    """Human form of a router's aggregated ``stats`` payload."""
    ring = stats.get("fleet", {}).get("ring", {})
    relay = stats.get("fleet", {}).get("relay", {})
    req = stats.get("requests", {})
    cache = stats.get("cache", {})
    nodes = ring.get("nodes", [])
    down = set(ring.get("down", []))
    lines = [
        f"fleet uptime {stats.get('uptime_s', 0.0):.1f}s, "
        f"{len(nodes)} replica(s) on the ring"
        + (f", {len(down)} DOWN" if down else ""),
        "relay: "
        + ", ".join(f"{k}={relay.get(k, 0)}"
                    for k in ("frames", "edge_hits", "parsed", "local",
                              "forwarded", "failed")),
        "requests (fleet total): "
        + ", ".join(f"{k}={req.get(k, 0)}"
                    for k in ("submitted", "served", "errors", "bypassed",
                              "fast_path")),
        f"cache (fleet total): {cache.get('hits', 0)} hits, "
        f"{cache.get('near_hits', 0)} near, {cache.get('misses', 0)} miss "
        f"({100.0 * cache.get('hit_rate', 0.0):.1f}% hit rate)",
    ]
    for outcome, pct in stats.get("latency_by_outcome_ms", {}).items():
        if pct.get("count"):
            p99 = pct.get("p99")
            lines.append(
                f"latency[{outcome}]: worst-replica "
                f"p99={p99:.2f}ms over {pct['count']} request(s)"
                if p99 is not None
                else f"latency[{outcome}]: {pct['count']} request(s)"
            )
    for entry in stats.get("fleet", {}).get("replicas", []):
        node = entry.get("node")
        state = "DOWN" if entry.get("down") else "up"
        detail = ""
        rstats = entry.get("stats")
        if rstats:
            rreq = rstats.get("requests", {})
            detail = (
                f", served {rreq.get('served', 0)}"
                f"/{rreq.get('submitted', 0)} request(s)"
            )
        elif entry.get("error"):
            detail = f", stats unavailable ({entry['error']})"
        lines.append(f"replica {node} [{entry.get('address')}]: "
                     f"{state}{detail}")
    return "\n".join(lines)


def _render_stats(stats: dict) -> str:
    """Human form of the ``stats`` RPC payload, metrics section included."""
    from repro.obs.metrics import snapshot_quantile

    if "fleet" in stats:
        return _render_fleet_stats(stats)
    req = stats.get("requests", {})
    cache = stats.get("cache", {})
    reply_cache = stats.get("reply_cache", {})
    batches = stats.get("batches", {})
    latency = stats.get("latency_ms", {})
    lines = [
        f"uptime {stats.get('uptime_s', 0.0):.1f}s, "
        f"fidelity {stats.get('fidelity', '?')}"
        + (", DEGRADED (no live shards)" if stats.get("degraded") else ""),
        "requests: "
        + ", ".join(f"{k}={req.get(k, 0)}"
                    for k in ("submitted", "served", "errors", "bypassed",
                              "fast_path")),
        f"cache: {cache.get('hits', 0)} hits, "
        f"{cache.get('near_hits', 0)} near, {cache.get('misses', 0)} miss "
        f"({100.0 * cache.get('hit_rate', 0.0):.1f}% hit rate, "
        f"{cache.get('currsize', 0)}/{cache.get('maxsize', 0)} entries, "
        f"{cache.get('evictions', 0)} evicted)",
        f"reply cache: {reply_cache.get('hits', 0)} hits, "
        f"{reply_cache.get('currsize', 0)}/{reply_cache.get('maxsize', 0)} "
        f"frame(s)",
        f"batches: {batches.get('count', 0)} dispatched, "
        f"max size {batches.get('max_size', 0)}, "
        f"{batches.get('coalesced', 0)} coalesced",
    ]
    warming = stats.get("warming")
    if warming:
        lines.append(
            "warming: "
            + ", ".join(f"{k}={warming.get(k, 0)}"
                        for k in ("queued", "warmed", "skipped", "dropped",
                                  "failed", "depth"))
        )
    if latency.get("count"):
        lines.append(
            "latency: "
            + ", ".join(
                f"{k}={latency[k]:.2f}ms"
                for k in ("p50", "p90", "p99")
                if latency.get(k) is not None
            )
            + f" over {latency['count']} request(s)"
        )
    for outcome, pct in stats.get("latency_by_outcome_ms", {}).items():
        if pct.get("count"):
            lines.append(
                f"latency[{outcome}]: "
                + ", ".join(
                    f"{k}={pct[k]:.2f}ms"
                    for k in ("p50", "p90", "p99")
                    if pct.get(k) is not None
                )
                + f" over {pct['count']} request(s)"
            )
    for shard in stats.get("shards", []):
        state = "alive" if shard.get("alive") else "DEAD"
        lines.append(
            f"shard {shard.get('shard')}: pid {shard.get('pid')} {state}, "
            f"queue depth {shard.get('queue_depth')}"
        )
    metrics = stats.get("metrics", {})
    snapshot = metrics.get("registry", {})
    if snapshot:
        lines.append(
            f"metrics ({metrics.get('shards_reporting', 0)}/"
            f"{metrics.get('shards_polled', 0)} shard(s) reporting):"
        )
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("type")
            for key in sorted(entry.get("values", {})):
                label = f"{name}{{{key}}}" if key else name
                if kind == "histogram":
                    state = entry["values"][key]
                    parts = [f"count={state['count']}",
                             f"sum={state['sum']:.4g}"]
                    p50 = snapshot_quantile(entry, key, 0.50)
                    p99 = snapshot_quantile(entry, key, 0.99)
                    if p50 is not None:
                        parts.append(f"p50~{p50:.4g}")
                    if p99 is not None:
                        parts.append(f"p99~{p99:.4g}")
                    lines.append(f"  {label}  " + " ".join(parts))
                else:
                    value = entry["values"][key]
                    lines.append(f"  {label}  {value:g}")
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    spec = args.server
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://"):]
    host, _, port = spec.partition(":")
    if not host or not port.isdigit():
        raise SystemExit(
            f"invalid server spec {args.server!r} (expected tcp://host:port)"
        )
    with ServeClient(host, int(port), timeout=args.timeout) as client:
        stats = client.stats()
    if args.json:
        _emit_json(stats)
    else:
        print(_render_stats(stats))
    return 0


def _parse_format(name: str):
    from repro.formats.registry import Format

    for fmt in Format:
        if fmt.value.lower() == name.lower() or fmt.name.lower() == name.lower():
            return fmt
    raise SystemExit(
        f"unknown format {name!r}; choose from "
        + ", ".join(f.value for f in Format)
    )


def _cmd_paths(args: argparse.Namespace) -> int:
    from repro.formats.registry import MATRIX_FORMATS, TENSOR_FORMATS
    from repro.mint.graph import HopStats, conversion_graph

    tensor = args.tensor
    graph = conversion_graph(tensor=tensor)
    catalog = TENSOR_FORMATS if tensor else MATRIX_FORMATS
    size = args.m * args.k * (args.l if tensor else 1)
    nnz = max(1, int(args.density * size))
    stats = HopStats(
        size=size, nnz=nnz, major_dim=args.m, dtype_bits=args.bits,
        tensor=tensor,
    )
    kind = "tensor" if tensor else "matrix"
    shape = f"{args.m}x{args.k}" + (f"x{args.l}" if tensor else "")
    pairs = (
        [(_parse_format(args.src), _parse_format(args.dst))]
        if args.src and args.dst
        else [(s, t) for s in catalog for t in catalog if s is not t]
    )
    print(
        f"conversion graph ({kind}): {len(catalog)} formats, "
        f"{len(graph)} registered datapaths"
    )
    for dp in sorted(graph, key=lambda d: (d.source.value, d.target.value)):
        extra = f"  kwargs: {', '.join(dp.accepts)}" if dp.accepts else ""
        print(f"  {dp.source.value:>6} -> {dp.target.value:<6} {dp.name}{extra}")
    print()
    print(f"planned routes for {shape} @ density {args.density:g} (nnz {nnz}):")
    from repro.errors import ConversionError

    for src, dst in pairs:
        try:
            route = graph.find_path(src, dst, stats)
        except ConversionError as exc:
            print(f"  {src.value} -> {dst.value}: {exc}")
            continue
        cycles = graph.path_cycles(route, stats)
        hub = graph.hub_heuristic_path(src, dst)
        hub_cycles = graph.path_cycles(hub, stats)
        hops = " -> ".join([src.value] + [dp.target.value for dp in route])
        note = "" if route == hub else f"  (hub heuristic: ~{hub_cycles:,.0f})"
        print(f"  {hops:<28} ~{cycles:,.0f} cycles{note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` / ``python -m repro`` argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-format sparse tensor accelerator reproduction "
        "(Qin et al., IPDPS 2021)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="stdlib logging level for repro.* loggers "
        "(default: the REPRO_LOG env var, else silent)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend", default="local",
            help="prediction backend: 'local' (in-process, default) or "
            "tcp://host:port of a running 'repro serve'",
        )

    p = sub.add_parser("sage", help="run the SAGE format predictor")
    p.add_argument("--m", type=int, default=4096)
    p.add_argument("--k", type=int, default=4096,
                   help="matrix inner dim, or 3rd tensor extent with --tensor")
    p.add_argument("--n", type=int, default=2048)
    p.add_argument("--density", type=float, default=0.05)
    p.add_argument("--kernel",
                   choices=["spmm", "spgemm", "spttm", "mttkrp"],
                   default=None,
                   help="default: spmm, or spttm with --tensor")
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--tensor", action="store_true",
                   help="3-D tensor workload (--i --j --k extents)")
    p.add_argument("--i", type=int, default=256, help="1st tensor extent")
    p.add_argument("--j", type=int, default=256, help="2nd tensor extent")
    p.add_argument("--rank", type=int, default=0,
                   help="factor rank (default: i // 2, Sec. VII-A)")
    p.add_argument("--fidelity",
                   choices=["analytical", "calibrated", "cycle"],
                   default="analytical",
                   help="calibrated: correct the analytical candidates "
                   "with a measured factor table (see 'repro calibrate'); "
                   "cycle: re-rank the analytical top-k on the "
                   "cycle-level simulator (matrix workloads)")
    p.add_argument("--json", action="store_true",
                   help="emit the decision as JSON (to_wire form)")
    add_backend(p)
    p.set_defaults(fn=_cmd_sage)

    p = sub.add_parser(
        "run",
        help="end-to-end pipeline: SAGE decision -> MINT conversion -> "
        "cycle-level simulation",
    )
    p.add_argument("--m", type=int, default=512)
    p.add_argument("--k", type=int, default=512)
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--density", type=float, default=0.05)
    p.add_argument("--kernel", choices=["spmm", "spgemm"], default=None)
    p.add_argument("--top", type=int, default=5,
                   help="ranking prefix in --json output")
    p.add_argument("--fidelity",
                   choices=["analytical", "calibrated", "cycle"],
                   default="analytical")
    p.add_argument("--seed", type=int, default=0,
                   help="operand materialization seed")
    p.add_argument("--engine", choices=["vectorized", "reference"],
                   default="vectorized", help="cycle-simulator engine")
    p.add_argument("--json", action="store_true",
                   help="emit the run result as JSON")
    p.add_argument("--trace", metavar="OUT.JSON", default=None,
                   help="export Chrome trace-event JSON of the run's "
                   "spans (open in chrome://tracing or Perfetto)")
    add_backend(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "serve", help="run the batched, cached SAGE prediction server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7342,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--shards", type=int, default=2,
                   help="warm worker processes (0 = in-process)")
    p.add_argument("--batch-window-ms", type=float, default=2.0)
    p.add_argument("--cache-size", type=int, default=4096)
    p.add_argument("--exact", action="store_true",
                   help="disable density-band near-hit cache answers")
    p.add_argument("--top", type=int, default=8,
                   help="ranking prefix shipped per decision")
    p.add_argument("--fidelity",
                   choices=["analytical", "calibrated", "cycle"],
                   default="analytical",
                   help="prediction tier the server answers with "
                   "(calibrated needs a built table, see 'repro calibrate')")
    p.add_argument("--replicas", type=int, default=1,
                   help="server replicas; >1 boots a consistent-hash "
                   "router fleet behind the bind address")
    p.add_argument("--warm-bands", type=int, default=1,
                   help="speculative warming depth on cache misses "
                   "(adjacent density bands per direction; 0 disables)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("sweep", help="Fig. 4-style compactness sweep")
    p.add_argument("--m", type=int, default=11_000)
    p.add_argument("--k", type=int, default=11_000)
    p.add_argument("--bits", type=int, default=32)
    p.add_argument("--json", action="store_true",
                   help="emit the sweep as JSON")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("walkthrough", help="render the Fig. 6 bus traces")
    p.add_argument("--bus", type=int, default=5, help="bus slots per cycle")
    p.set_defaults(fn=_cmd_walkthrough)

    p = sub.add_parser("suite", help="Table II policies on a Table III workload")
    p.add_argument("workload", help="e.g. speech2, m3plates, journals")
    p.add_argument("--kernel", choices=["spmm", "spgemm"], default="spgemm")
    p.add_argument("--json", action="store_true",
                   help="emit the policy comparison as JSON")
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser(
        "xp",
        help="experiment orchestrator: the paper's figures/tables/ablations",
    )
    xp_sub = p.add_subparsers(dest="xp_command", required=True)

    q = xp_sub.add_parser("list", help="registered experiments")
    q.add_argument("--kind", choices=["figure", "table", "ablation"],
                   default=None)
    q.add_argument("--json", action="store_true")
    q.set_defaults(fn=_cmd_xp)

    q = xp_sub.add_parser(
        "run",
        help="run experiments: expand grids, fan out, cache, check, report",
    )
    q.add_argument("experiments", nargs="*",
                   help="experiment names (see 'repro xp list')")
    q.add_argument("--all", action="store_true",
                   help="run every registered experiment")
    q.add_argument("--smoke", action="store_true",
                   help="CI-sized scenario grids")
    q.add_argument("--resume", action="store_true",
                   help="skip cells already in the artifact store")
    q.add_argument("--force", action="store_true",
                   help="invalidate cached cells first")
    q.add_argument("--serial", action="store_true",
                   help="single-process execution (no fork pool)")
    q.add_argument("--isolate", action="store_true",
                   help="cold session + cleared caches per cell "
                   "(the seed-script baseline)")
    q.add_argument("--processes", type=int, default=None,
                   help="fork-pool width (default: one per CPU)")
    q.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "pickle"),
                   help="worker wire format: zero-copy shared-memory "
                   "operands (shm) or classic per-submit pickling")
    q.add_argument("--store", default=None,
                   help="artifact store root "
                   "(default: benchmarks/out/xp/store)")
    q.add_argument("--out", default=None,
                   help="report/journal directory (default: benchmarks/out)")
    q.add_argument("--no-report", action="store_true",
                   help="skip the markdown report stage")
    q.add_argument("--json", action="store_true",
                   help="emit the run record as JSON")
    q.add_argument("--trace", action="store_true",
                   help="export Chrome trace-event JSON of the grid run "
                   "to <out>/trace.json")
    add_backend(q)
    q.set_defaults(fn=_cmd_xp)

    q = xp_sub.add_parser(
        "report", help="re-render reports from the artifact store"
    )
    q.add_argument("experiments", nargs="*",
                   help="experiment names (default: all)")
    q.add_argument("--smoke", action="store_true",
                   help="report over the smoke grids")
    q.add_argument("--store", default=None)
    q.add_argument("--out", default=None)
    add_backend(q)  # grids measured against a server key on its spec
    q.set_defaults(fn=_cmd_xp)

    p = sub.add_parser(
        "tune",
        help="invert SAGE: sweep accelerator configs to a Pareto front "
        "over cycles/energy/area",
    )
    p.add_argument("--space", choices=["paper_default", "smoke", "full"],
                   default=None,
                   help="named ParamSpace preset (default: smoke)")
    p.add_argument("--suite", choices=["tiny", "smoke", "tableiii"],
                   default=None,
                   help="workload suite the objective prices "
                   "(default: smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized sweep: smoke space + smoke suite")
    p.add_argument("--strategy", choices=["grid", "random", "halving"],
                   default="grid",
                   help="grid: every valid point; random: seeded sample; "
                   "halving: analytical screen, cycle-confirm survivors")
    p.add_argument("--budget", type=int, default=None,
                   help="max points swept (anchor always kept)")
    p.add_argument("--seed", type=int, default=0,
                   help="sampling seed for --strategy random")
    p.add_argument("--resume", action="store_true",
                   help="answer cells already in the artifact store")
    p.add_argument("--force", action="store_true",
                   help="invalidate cached tune cells first")
    p.add_argument("--no-seeds", action="store_true",
                   help="skip the ablation-experiment seed points")
    p.add_argument("--serial", action="store_true",
                   help="single-process execution (no fork pool)")
    p.add_argument("--processes", type=int, default=None,
                   help="fork-pool width (default: one per CPU)")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "pickle"),
                   help="worker wire format (see 'repro xp run')")
    p.add_argument("--store", default=None,
                   help="artifact store root "
                   "(default: benchmarks/out/xp/store)")
    p.add_argument("--out", default=None,
                   help="report directory (default: benchmarks/out)")
    p.add_argument("--top", type=int, default=10,
                   help="front rows printed (full table in the report)")
    p.add_argument("--no-report", action="store_true",
                   help="skip the Pareto markdown page")
    p.add_argument("--json", action="store_true",
                   help="emit the tune record as JSON")
    add_backend(p)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "calibrate",
        help="build/inspect the calibrated-fidelity factor table "
        "(analytical cost model regressed against the cycle simulator)",
    )
    p.add_argument("--suite", choices=["tiny", "smoke", "full"],
                   default=None,
                   help="named training grid (default: smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="CI entry point: pin the smoke grid")
    p.add_argument("--resume", action="store_true",
                   help="reuse grid cells already in the artifact store "
                   "instead of re-simulating")
    p.add_argument("--force", action="store_true",
                   help="invalidate stored grid cells and re-measure")
    p.add_argument("--inspect", action="store_true",
                   help="print the stored table for this config "
                   "(no build)")
    p.add_argument("--store", default=None,
                   help="artifact store root (default: the shared store)")
    p.add_argument("--json", action="store_true",
                   help="emit the build record (or table) as JSON")
    p.set_defaults(fn=_cmd_calibrate)

    p = sub.add_parser(
        "stats",
        help="pretty-print a running server's stats RPC (metrics included)",
    )
    p.add_argument("server", help="tcp://host:port of a running 'repro serve'")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="connection/RPC timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="emit the raw stats payload as JSON")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "paths", help="print the conversion graph and planned routes"
    )
    p.add_argument("--tensor", action="store_true", help="3-D tensor graph")
    p.add_argument("--src", help="route source format (with --dst)")
    p.add_argument("--dst", help="route target format (with --src)")
    p.add_argument("--m", type=int, default=4096)
    p.add_argument("--k", type=int, default=4096)
    p.add_argument("--l", type=int, default=64, help="3rd extent (tensor)")
    p.add_argument("--density", type=float, default=0.01)
    p.add_argument("--bits", type=int, default=32)
    p.set_defaults(fn=_cmd_paths)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
