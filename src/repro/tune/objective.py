"""Per-config suite evaluation: the tuner's cycles/energy/area objective.

One evaluation prices a whole workload suite on one :class:`TunePoint`:

* **cycles** — the sum of SAGE-chosen best-candidate total cycles across
  the suite, computed through :meth:`Session.predict` with the point's
  hardware shipped as ``PredictOptions(config=..., dram_gbps=...)``.
  That makes every (workload, hardware) pair a servable query: the same
  evaluation runs in-process or against a ``tcp://`` fleet backend.
* **energy** — DRAM energy plus tech-node-scaled on-chip energy from the
  :mod:`repro.hardware.energy` event prices riding each
  :class:`~repro.sage.cost_model.CostBreakdown`.
* **area** — the PE array priced with :mod:`repro.hardware.area`
  (MAC lanes scaled by datatype width, per-byte buffer area, control,
  and the flexible-PE extension) plus the shared merged MINT converter,
  scaled quadratically by tech node.

Evaluations key into the :mod:`repro.xp.artifacts` store under the
``tune_grid`` identity, shared with the xp experiment of the same name,
so sweeps resume and ablation-seeded cells are never recomputed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

from repro.api.options import PredictOptions
from repro.hardware.area import DEFAULT_AREA, AreaModel
from repro.mint.designs import MintDesign, mint_area
from repro.obs import span
from repro.tune.space import TunePoint
from repro.workloads.spec import Kernel, MatrixWorkload
from repro.workloads.suite import MATRIX_SUITE

__all__ = [
    "EvalIdentity",
    "OBJECTIVES",
    "TUNE_EVAL_VERSION",
    "TUNE_GRID_NAME",
    "evaluate_with_session",
    "point_area_mm2",
    "suite_names",
    "tune_suite",
]

#: The artifact-store identity shared by the tuner and the ``tune_grid``
#: xp experiment — same name + version + params ⇒ same cache cell.
TUNE_GRID_NAME = "tune_grid"
TUNE_EVAL_VERSION = 1

#: The minimized objective keys, in report order.
OBJECTIVES = ("cycles", "energy_j", "area_mm2")


@dataclass(frozen=True)
class EvalIdentity:
    """Duck-typed stand-in for ``ArtifactStore.cell_key``'s experiment."""

    name: str = TUNE_GRID_NAME
    version: int = TUNE_EVAL_VERSION


# ----------------------------------------------------------------- suites --

def _synthetic(name: str, m: int, k: int, n: int, density: float) -> MatrixWorkload:
    return MatrixWorkload(
        name=name,
        kernel=Kernel.SPMM,
        m=m, k=k, n=n,
        nnz_a=max(1, int(density * m * k)),
        nnz_b=k * n,
        dtype_bits=32,
    )


def suite_names() -> tuple[str, ...]:
    """Names :func:`tune_suite` accepts."""
    return ("tiny", "smoke", "tableiii")


def tune_suite(name: str) -> list[MatrixWorkload]:
    """The workload suite a tune run optimizes for.

    ``tiny`` is small enough for cycle-fidelity confirmation in tests;
    ``smoke`` spans the paper's density regions (and an n wide enough
    that PE count matters) while staying analytical-interactive;
    ``tableiii`` is the real Table III matrix suite.
    """
    if name == "tiny":
        return [
            _synthetic("tune_tiny_dense", 96, 96, 48, 0.3),
            _synthetic("tune_tiny_sparse", 96, 96, 48, 0.02),
        ]
    if name == "smoke":
        return [
            _synthetic("tune_smoke_dense", 512, 512, 256, 0.3),
            _synthetic("tune_smoke_wide", 512, 512, 2048, 0.05),
            _synthetic("tune_smoke_hyper", 512, 512, 256, 0.005),
        ]
    if name == "tableiii":
        return [entry.matrix_workload(Kernel.SPMM) for entry in MATRIX_SUITE]
    raise ValueError(
        f"unknown tune suite {name!r} (choose from {', '.join(suite_names())})"
    )


# ------------------------------------------------------------------- area --

def point_area_mm2(point: TunePoint, model: AreaModel = DEFAULT_AREA) -> float:
    """Silicon area (mm²) of one candidate design.

    The PE array reuses the calibrated flexible-PE composition
    (:meth:`AreaModel.pe_extended_area`) with the MAC-lane term scaled by
    datatype width (the model's lane constant is a 32-bit unit), plus one
    shared merged MINT converter; the whole die scales quadratically with
    the tech node à la the CACTI sweeps.
    """
    lane_scale = point.dtype_bits / 32.0
    per_pe = (
        model.pe_mac_lane_area * lane_scale * point.vector_lanes
        + point.pe_buffer_bytes * model.pe_buffer_area_per_byte
        + model.pe_control_area
        + model.pe_extension_area(point.vector_lanes)
    )
    die = point.num_pes * per_pe + mint_area(MintDesign.MERGED, model)
    return die * point.area_scale


# -------------------------------------------------------------- evaluation --

def evaluate_with_session(session, params: Mapping) -> dict:
    """Price one tune cell (a ``{point, suite, fidelity}`` param dict).

    Shared by the tuner workers and the ``tune_grid`` xp experiment so
    both produce byte-identical results for the same cell.  *session* is
    any :class:`~repro.api.session.Session`-shaped object; the point's
    hardware travels in the options, so local and fleet backends price
    identically.
    """
    point = TunePoint.from_params(params["point"])
    suite = str(params["suite"])
    fidelity = str(params["fidelity"])
    workloads = [
        dataclasses.replace(wl, dtype_bits=point.dtype_bits)
        for wl in tune_suite(suite)
    ]
    options = PredictOptions(
        fidelity=fidelity,
        config=point.accelerator_config(),
        dram_gbps=point.dram_gbps,
        processes=1,  # the tuner owns the outer fan-out
        top_k=1,
    )
    with span("tune.evaluate", suite=suite, fidelity=fidelity,
              point=point.label()):
        decisions = session.predict(workloads, options)
    cycles = 0
    dram_j = 0.0
    onchip_j = 0.0
    seconds = 0.0
    chosen: dict[str, list[str]] = {}
    for wl, decision in zip(workloads, decisions):
        best = decision.best
        cycles += best.total_cycles
        dram_j += best.dram_energy_j
        onchip_j += best.conv_energy_j + best.compute_energy_j
        seconds += best.seconds
        chosen[wl.name] = [f.value for f in best.mcf] + [f.value for f in best.acf]
    energy_j = dram_j + onchip_j * point.energy_scale
    return {
        "cycles": int(cycles),
        "energy_j": float(energy_j),
        "area_mm2": float(point_area_mm2(point)),
        "edp": float(energy_j * seconds),
        "formats": chosen,
    }
