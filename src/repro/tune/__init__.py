"""``repro.tune`` — invert SAGE into an accelerator-config autotuner.

SAGE answers "best format for this hardware"; this package answers the
dual question — "best hardware for this workload suite" — by sweeping
:class:`~repro.accelerator.config.AcceleratorConfig` / DRAM / tech-node
candidates through the same predictor and extracting the non-dominated
front over (cycles, energy, area).

Entry points: :func:`~repro.tune.search.run_tune` (library),
``repro tune`` (CLI).  See ``docs/tuning.md``.
"""

from repro.tune.objective import (
    OBJECTIVES,
    TUNE_EVAL_VERSION,
    TUNE_GRID_NAME,
    evaluate_with_session,
    point_area_mm2,
    tune_suite,
)
from repro.tune.pareto import (
    dominated_counts,
    dominates,
    hypervolume_fraction,
    pareto_front,
)
from repro.tune.report import render_tune_md, write_tune_report
from repro.tune.search import (
    STRATEGIES,
    TuneConfig,
    TuneEntry,
    TuneResult,
    run_tune,
)
from repro.tune.space import (
    ParamSpace,
    TunePoint,
    ablation_seed_points,
    register_seed_points,
    seed_points,
    space,
    space_names,
)

__all__ = [
    "OBJECTIVES",
    "ParamSpace",
    "STRATEGIES",
    "TUNE_EVAL_VERSION",
    "TUNE_GRID_NAME",
    "TuneConfig",
    "TuneEntry",
    "TunePoint",
    "TuneResult",
    "ablation_seed_points",
    "dominated_counts",
    "dominates",
    "evaluate_with_session",
    "hypervolume_fraction",
    "pareto_front",
    "point_area_mm2",
    "register_seed_points",
    "render_tune_md",
    "run_tune",
    "seed_points",
    "space",
    "space_names",
    "tune_suite",
    "write_tune_report",
]
