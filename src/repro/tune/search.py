"""Tune strategies: grid, seeded-random, and successive halving.

A run sweeps a :class:`~repro.tune.space.ParamSpace` (anchored at
``paper_default``, optionally widened with the ablation seed points)
through the :mod:`~repro.tune.objective` evaluation, fanned across the
:func:`~repro.util.pool.fork_map` pool with the shm operand plane, and
keyed into the :class:`~repro.xp.artifacts.ArtifactStore` so interrupted
or repeated sweeps resume instead of recomputing.

Strategies
----------
``grid``
    Every valid point (budget-truncated), at the configured fidelity.
``random``
    The anchor plus a seeded sample of the rest — a cheap smoke of a
    large space.
``halving``
    Successive halving across the fidelity tiers: an analytical rung
    prices everything, a ``tune.prune`` pass keeps the top ``1/eta`` by
    EDP (the anchor always survives, so the paper system is confirmed at
    full fidelity), and survivors are re-priced at cycle fidelity.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigError
from repro.obs import collect_spans, registry, span
from repro.tune.objective import (
    OBJECTIVES,
    EvalIdentity,
    evaluate_with_session,
    suite_names,
)
from repro.tune.pareto import dominated_counts, hypervolume_fraction, pareto_front
from repro.tune.space import ParamSpace, TunePoint, ablation_seed_points, space
from repro.util.pool import fork_map
from repro.xp.artifacts import ArtifactStore

__all__ = ["STRATEGIES", "TuneConfig", "TuneEntry", "TuneResult", "run_tune"]

STRATEGIES = ("grid", "random", "halving")

#: Points handed to a budget-less ``random`` strategy.
DEFAULT_RANDOM_BUDGET = 24

_POINTS = registry().counter(
    "repro_tune_points_total",
    "Tune point evaluations by outcome (swept, pruned, cache_hit)",
)


@dataclass(frozen=True)
class TuneConfig:
    """Everything one ``run_tune`` call needs besides the space."""

    suite: str = "smoke"
    strategy: str = "grid"
    budget: int | None = None
    seed: int = 0
    #: Fidelity of grid/random sweeps and the halving screening rung.
    fidelity: str = "analytical"
    #: Fidelity halving survivors are confirmed at.
    confirm_fidelity: str = "cycle"
    #: Halving keep-fraction denominator (survivors = ceil(n / eta)).
    eta: int = 4
    backend: str = "local"
    processes: int | None = None
    transport: str = "auto"
    resume: bool = False
    force: bool = False
    #: Fold the registered ablation seed points into the swept set.
    include_seeds: bool = True
    store_root: Path | str | None = None
    out_dir: Path | str | None = None
    report: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown tune strategy {self.strategy!r} (choose from "
                f"{', '.join(STRATEGIES)})"
            )
        if self.suite not in suite_names():
            raise ConfigError(
                f"unknown tune suite {self.suite!r} (choose from "
                f"{', '.join(suite_names())})"
            )
        if self.budget is not None and self.budget < 1:
            raise ConfigError("budget must be positive")
        if self.eta < 2:
            raise ConfigError("eta must be >= 2 (keep fewer than you screen)")


@dataclass
class TuneEntry:
    """One swept point and its (latest-fidelity) evaluation."""

    point: TunePoint
    params: dict = field(default_factory=dict)
    key: str = ""
    result: dict | None = None
    error: str | None = None
    fidelity: str = "analytical"
    cached: bool = False
    pruned: bool = False
    elapsed_s: float = 0.0
    spans: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def is_anchor(self) -> bool:
        return self.point == TunePoint()


@dataclass
class TuneResult:
    """Outcome of one tune run (see :meth:`record` for the JSON form)."""

    space_name: str
    config: TuneConfig
    entries: list[TuneEntry]
    front: list[int]
    executed: int = 0
    cached: int = 0
    pruned: int = 0
    hypervolume: float = 0.0
    wall_s: float = 0.0

    @property
    def failed(self) -> int:
        return sum(1 for e in self.entries if e.error is not None)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and bool(self.entries)

    @property
    def anchor(self) -> TuneEntry | None:
        """The ``paper_default`` entry (always swept, never pruned away)."""
        for entry in self.entries:
            if entry.is_anchor:
                return entry
        return None

    def front_entries(self) -> list[TuneEntry]:
        return [self.entries[i] for i in self.front]

    def record(self) -> dict:
        """JSON-safe summary (the CLI's ``--json`` body)."""
        evaluated = [e for e in self.entries if e.ok]
        counts = dominated_counts([e.result for e in evaluated])
        dominated = {id(e): c for e, c in zip(evaluated, counts)}
        anchor = self.anchor

        def row(entry: TuneEntry) -> dict:
            out = {
                "label": entry.point.label(),
                "params": entry.point.params(),
                "fidelity": entry.fidelity,
                "cached": entry.cached,
                "pruned": entry.pruned,
                "dominates": dominated.get(id(entry), 0),
            }
            if entry.result is not None:
                out.update(
                    {k: entry.result[k] for k in (*OBJECTIVES, "edp")}
                )
            if entry.error is not None:
                out["error"] = entry.error
            return out

        return {
            "space": self.space_name,
            "suite": self.config.suite,
            "strategy": self.config.strategy,
            "backend": self.config.backend,
            "points": len(self.entries),
            "executed": self.executed,
            "cached": self.cached,
            "pruned": self.pruned,
            "failed": self.failed,
            "front_size": len(self.front),
            "hypervolume": round(self.hypervolume, 4),
            "wall_s": round(self.wall_s, 4),
            "ok": self.ok,
            "anchor": None if anchor is None else row(anchor),
            "front": [row(e) for e in self.front_entries()],
        }


# --------------------------------------------------------------- the worker
@dataclass(frozen=True)
class _EvalJob:
    """Picklable unit of work handed to the fork pool."""

    params: tuple  # sorted (axis, value) pairs
    key: str
    backend: str


#: Per-worker-process warm sessions, keyed by backend spec.
_SESSIONS: dict = {}


def _session_for(backend: str):
    from repro.api.session import Session

    session = _SESSIONS.get(backend)
    if session is None:
        session = _SESSIONS[backend] = Session(backend)
    return session


def _evaluate_cell(job: _EvalJob) -> TuneEntry:
    """Pool task: price one point through a warm session."""
    params = dict(job.params)
    point = TunePoint.from_params(params["point"])
    t0 = time.perf_counter()
    try:
        session = _session_for(job.backend)
        with collect_spans() as spans:
            result = evaluate_with_session(session, params)
        return TuneEntry(
            point=point,
            params=params,
            key=job.key,
            result=result,
            fidelity=str(params["fidelity"]),
            elapsed_s=time.perf_counter() - t0,
            spans=spans.summary() or None,
        )
    except Exception as exc:  # noqa: BLE001 - point failures are data
        return TuneEntry(
            point=point,
            params=params,
            key=job.key,
            error=f"{type(exc).__name__}: {exc}",
            fidelity=str(params["fidelity"]),
            elapsed_s=time.perf_counter() - t0,
        )


# ----------------------------------------------------------------- the run
def _selected_points(
    space_points: Sequence[TunePoint], config: TuneConfig
) -> list[TunePoint]:
    """The swept set: anchor first, deduplicated, strategy-sampled."""
    anchor = TunePoint()
    ordered: list[TunePoint] = [anchor]
    seen = {anchor}
    pool = list(space_points)
    if config.include_seeds:
        pool.extend(ablation_seed_points())
    for point in pool:
        if point not in seen:
            seen.add(point)
            ordered.append(point)
    if config.strategy == "random":
        budget = config.budget or DEFAULT_RANDOM_BUDGET
        rest = ordered[1:]
        take = min(max(budget - 1, 0), len(rest))
        return [anchor] + random.Random(config.seed).sample(rest, take)
    if config.budget is not None:
        return ordered[: max(config.budget, 1)]
    return ordered


def _evaluate(
    entries: list[TuneEntry],
    fidelity: str,
    config: TuneConfig,
    store: ArtifactStore,
    identity: EvalIdentity,
) -> tuple[int, int]:
    """Price *entries* at *fidelity* in place; returns (executed, cached)."""
    jobs: list[_EvalJob] = []
    pending: dict[str, TuneEntry] = {}
    cached = 0
    for entry in entries:
        params = {
            "point": entry.point.params(),
            "suite": config.suite,
            "fidelity": fidelity,
        }
        key = store.cell_key(identity, params, backend=config.backend)
        entry.params, entry.key, entry.fidelity = params, key, fidelity
        record = store.load(identity.name, key) if config.resume else None
        if record is not None and "result" in record:
            entry.result = record["result"]
            entry.cached = True
            entry.elapsed_s = float(record.get("elapsed_s", 0.0))
            entry.spans = record.get("spans")
            cached += 1
            continue
        entry.cached = False
        pending[key] = entry
        jobs.append(
            _EvalJob(
                params=tuple(sorted(params.items())),
                key=key,
                backend=config.backend,
            )
        )

    def persist(outcome: TuneEntry) -> None:
        # Runs in this process as results arrive: an interrupted sweep
        # keeps every completed cell for the next --resume.  The record
        # shape matches the xp runner's, so tune cells and tune_grid
        # experiment cells are interchangeable cache content.
        if outcome.ok:
            store.store(
                identity.name,
                outcome.key,
                {
                    "experiment": identity.name,
                    "params": outcome.params,
                    "result": outcome.result,
                    "elapsed_s": round(outcome.elapsed_s, 6),
                    "spans": outcome.spans,
                    "digest": store.config_digest(),
                },
            )

    outcomes = fork_map(
        _evaluate_cell,
        jobs,
        processes=config.processes,
        consume=persist,
        transport=config.transport,
    )
    for outcome in outcomes:
        entry = pending[outcome.key]
        entry.result = outcome.result
        entry.error = outcome.error
        entry.elapsed_s = outcome.elapsed_s
        entry.spans = outcome.spans
    if cached:
        _POINTS.inc(cached, outcome="cache_hit")
    if jobs:
        _POINTS.inc(len(jobs), outcome="swept")
    return len(jobs), cached


def run_tune(
    space_or_name: ParamSpace | str = "smoke",
    config: TuneConfig | None = None,
) -> TuneResult:
    """Sweep a space and return the Pareto result (see module docstring)."""
    config = config or TuneConfig()
    tune_space = (
        space(space_or_name) if isinstance(space_or_name, str) else space_or_name
    )
    t0 = time.perf_counter()
    store = ArtifactStore(config.store_root)
    identity = EvalIdentity()
    if config.force:
        store.invalidate(identity.name)

    entries = [
        TuneEntry(point=p)
        for p in _selected_points(tune_space.points(), config)
    ]
    executed = cached = pruned = 0

    if config.strategy == "halving":
        n_exec, n_hit = _evaluate(
            entries, config.fidelity, config, store, identity
        )
        executed += n_exec
        cached += n_hit
        screened = [e for e in entries if e.ok]
        keep = max(1, -(-len(screened) // config.eta))  # ceil division
        with span(
            "tune.prune",
            strategy=config.strategy,
            screened=len(screened),
            keep=keep,
        ):
            ranked = sorted(screened, key=lambda e: e.result["edp"])
            survivors = ranked[:keep]
            anchor = next((e for e in entries if e.is_anchor), None)
            if anchor is not None and anchor.ok and anchor not in survivors:
                survivors.append(anchor)
            for entry in screened:
                entry.pruned = entry not in survivors
        pruned = sum(1 for e in entries if e.pruned)
        if pruned:
            _POINTS.inc(pruned, outcome="pruned")
        n_exec, n_hit = _evaluate(
            survivors, config.confirm_fidelity, config, store, identity
        )
        executed += n_exec
        cached += n_hit
    else:
        executed, cached = _evaluate(
            entries, config.fidelity, config, store, identity
        )

    # The front is drawn over confirmed (non-pruned) evaluations; pruned
    # points stay in ``entries`` for the report's dominated-count stats.
    confirmed = [
        i for i, e in enumerate(entries) if e.ok and not e.pruned
    ]
    front_local = pareto_front([entries[i].result for i in confirmed])
    front = [confirmed[i] for i in front_local]
    hypervolume = hypervolume_fraction(
        [entries[i].result for i in confirmed], seed=config.seed
    )

    result = TuneResult(
        space_name=tune_space.name,
        config=config,
        entries=entries,
        front=front,
        executed=executed,
        cached=cached,
        pruned=pruned,
        hypervolume=hypervolume,
        wall_s=time.perf_counter() - t0,
    )
    if config.report and config.out_dir is not None:
        from repro.tune.report import write_tune_report

        write_tune_report(result, config.out_dir)
    return result
