"""Non-dominated front extraction and hypervolume-style summaries.

All objectives are minimized.  Rows are plain mappings holding the
:data:`~repro.tune.objective.OBJECTIVES` keys; the functions here are
pure so they are trivially testable and reusable by reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.tune.objective import OBJECTIVES

__all__ = [
    "dominates",
    "dominated_counts",
    "hypervolume_fraction",
    "pareto_front",
]


def _vector(row: Mapping, objectives: Sequence[str]) -> tuple[float, ...]:
    return tuple(float(row[k]) for k in objectives)


def dominates(a: Mapping, b: Mapping, objectives: Sequence[str] = OBJECTIVES) -> bool:
    """True when *a* is no worse than *b* everywhere and better somewhere."""
    va, vb = _vector(a, objectives), _vector(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def pareto_front(
    rows: Sequence[Mapping], objectives: Sequence[str] = OBJECTIVES
) -> list[int]:
    """Indices of the non-dominated rows, in input order.

    Duplicate objective vectors are all kept (they dominate nothing and
    nothing strictly dominates them), so equally-priced configs stay
    visible in the front table.
    """
    front: list[int] = []
    for i, row in enumerate(rows):
        if not any(
            dominates(other, row, objectives)
            for j, other in enumerate(rows)
            if j != i
        ):
            front.append(i)
    return front


def dominated_counts(
    rows: Sequence[Mapping], objectives: Sequence[str] = OBJECTIVES
) -> list[int]:
    """Per-row count of other rows it dominates (the front's 'strength')."""
    return [
        sum(
            1
            for j, other in enumerate(rows)
            if j != i and dominates(row, other, objectives)
        )
        for i, row in enumerate(rows)
    ]


def hypervolume_fraction(
    rows: Sequence[Mapping],
    objectives: Sequence[str] = OBJECTIVES,
    *,
    samples: int = 4096,
    seed: int = 0,
) -> float:
    """Fraction of the normalized objective box dominated by the front.

    Objectives are min-max normalized over *rows* (a constant dimension
    contributes nothing), the reference point is the normalized
    worst-corner ``(1, …, 1)``, and the volume is estimated by a seeded
    Monte-Carlo sweep — deterministic for a given *rows*/*seed*, which is
    all a regression summary needs.  Returns 0.0 for an empty input.
    """
    if not rows:
        return 0.0
    pts = np.asarray([_vector(r, objectives) for r in rows], dtype=float)
    lo, hi = pts.min(axis=0), pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normed = (pts - lo) / span
    front = normed[pareto_front(rows, objectives)]
    rng = np.random.default_rng(seed)
    cloud = rng.random((samples, len(objectives)))
    # A sample is dominated when some front point is <= it coordinatewise.
    covered = (front[None, :, :] <= cloud[:, None, :]).all(axis=2).any(axis=1)
    return float(covered.mean())
