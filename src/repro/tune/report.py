"""Markdown rendering of a tune run: the Pareto page.

Written to ``<out>/xp/tune_pareto.md`` next to the xp experiment pages,
so a paper-suite report directory carries the tuner's front alongside
the ablations that seeded it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tune.objective import OBJECTIVES
from repro.tune.pareto import dominated_counts
from repro.tune.search import TuneResult

__all__ = ["render_tune_md", "write_tune_report"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def render_tune_md(result: TuneResult) -> str:
    """The Pareto page: front table, anchor row, dominated-count stats."""
    record = result.record()
    front_indices = set(result.front)
    evaluated = [e for e in result.entries if e.ok]
    counts = dominated_counts([e.result for e in evaluated])
    dominated = {id(e): c for e, c in zip(evaluated, counts)}

    lines = ["# repro.tune — Pareto front", ""]
    lines.append(
        f"Space `{record['space']}` · suite `{record['suite']}` · "
        f"strategy `{record['strategy']}` · backend `{record['backend']}`"
    )
    lines.append("")
    lines.append(
        f"{record['points']} points: {record['executed']} executed, "
        f"{record['cached']} cache hits, {record['pruned']} pruned, "
        f"{record['failed']} failed · front {record['front_size']} · "
        f"hypervolume {record['hypervolume']:g} · "
        f"wall {record['wall_s']:g}s"
    )
    lines.append("")

    headers = ["front", "config", "fidelity", *OBJECTIVES, "edp", "dominates", "cached"]
    rows = []
    order = sorted(
        range(len(result.entries)),
        key=lambda i: (
            result.entries[i].result["edp"]
            if result.entries[i].ok
            else float("inf")
        ),
    )
    for i in order:
        entry = result.entries[i]
        if not entry.ok:
            continue
        marker = "★" if i in front_indices else ("pruned" if entry.pruned else "")
        label = entry.point.label()
        if entry.is_anchor:
            label += " (paper_default)"
        rows.append(
            [
                marker,
                label,
                entry.fidelity,
                *(entry.result[k] for k in OBJECTIVES),
                entry.result["edp"],
                dominated.get(id(entry), 0),
                entry.cached,
            ]
        )
    lines.append(_md_table(headers, rows))

    failures = [e for e in result.entries if e.error is not None]
    if failures:
        lines.append("")
        lines.append("## Failures")
        lines.append("")
        for entry in failures:
            lines.append(f"- `{entry.point.label()}` — {entry.error}")
    lines.append("")
    return "\n".join(lines)


def write_tune_report(result: TuneResult, out_dir: Path | str) -> Path:
    """Write the Pareto page; returns its path."""
    out = Path(out_dir) / "xp"
    out.mkdir(parents=True, exist_ok=True)
    path = out / "tune_pareto.md"
    path.write_text(render_tune_md(result))
    return path
