"""Declarative accelerator-config search spaces for the tuner.

A :class:`TunePoint` is one candidate hardware design: the five
:class:`~repro.accelerator.config.AcceleratorConfig` knobs, the DRAM
channel bandwidth (:mod:`repro.hardware.dram`), and a technology-node
scale knob in the CACTI-sweep idiom — cost models are calibrated at
28 nm, and a point at ``tech_node_nm`` scales area quadratically and
on-chip energy linearly with the node ratio.

A :class:`ParamSpace` is the cross-product of per-knob value lists,
filtered for validity through ``AcceleratorConfig.__post_init__`` (a
point whose bus cannot carry one element, say, is silently excluded
rather than crashing the sweep).  Named presets (:func:`space`) anchor
every sweep at the paper's Sec. VII-A system: ``paper_default`` is both
a preset of its own and a grid point of the larger presets.

The four hardware-ablation experiments in :mod:`repro.xp.paper`
register their grids here as **seed points**
(:func:`register_seed_points`), so a tuner run shares artifact-cache
cells with the ablation suite instead of recomputing them.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.hardware.dram import DramChannel

__all__ = [
    "ParamSpace",
    "TunePoint",
    "ablation_seed_points",
    "register_seed_points",
    "seed_points",
    "space",
    "space_names",
]

#: Calibration node of the area/energy models (the MINT synthesis target).
BASE_TECH_NM = 28.0

#: TunePoint fields that are integer accelerator knobs (the rest are floats).
_INT_KNOBS = ("num_pes", "vector_lanes", "pe_buffer_bytes", "bus_bits", "dtype_bits")


@dataclass(frozen=True)
class TunePoint:
    """One candidate hardware design; defaults are the paper anchor."""

    num_pes: int = 2048
    vector_lanes: int = 8
    pe_buffer_bytes: int = 512
    bus_bits: int = 512
    dtype_bits: int = 32
    dram_gbps: float = 64.0
    tech_node_nm: float = BASE_TECH_NM

    def __post_init__(self) -> None:
        # Normalize numeric types so params() is canonical-JSON-stable:
        # json.dumps(64) != json.dumps(64.0), and artifact keys hash the
        # canonical JSON — a float that snuck into an int knob would fork
        # the cache cell.
        for name in _INT_KNOBS:
            object.__setattr__(self, name, int(getattr(self, name)))
        object.__setattr__(self, "dram_gbps", float(self.dram_gbps))
        object.__setattr__(self, "tech_node_nm", float(self.tech_node_nm))
        if self.dram_gbps <= 0:
            raise ConfigError("dram_gbps must be positive")
        if self.tech_node_nm <= 0:
            raise ConfigError("tech_node_nm must be positive")
        self.accelerator_config()  # validity-filter through __post_init__

    # ------------------------------------------------------------ realized --
    def accelerator_config(self) -> AcceleratorConfig:
        """The realized :class:`AcceleratorConfig` (raises ``ConfigError``)."""
        return AcceleratorConfig(
            num_pes=self.num_pes,
            vector_lanes=self.vector_lanes,
            pe_buffer_bytes=self.pe_buffer_bytes,
            bus_bits=self.bus_bits,
            dtype_bits=self.dtype_bits,
        )

    def dram_channel(self) -> DramChannel:
        """The realized DRAM channel at this point's bandwidth."""
        return DramChannel(bandwidth_bytes_per_s=self.dram_gbps * 1e9)

    @property
    def area_scale(self) -> float:
        """Area multiplier vs the 28 nm calibration (quadratic in node)."""
        return (self.tech_node_nm / BASE_TECH_NM) ** 2

    @property
    def energy_scale(self) -> float:
        """On-chip energy multiplier vs 28 nm (linear in node)."""
        return self.tech_node_nm / BASE_TECH_NM

    # ----------------------------------------------------------------- wire --
    def params(self) -> dict:
        """Canonical JSON-safe param dict — the artifact-cache identity.

        Both the tuner and the ``tune_grid`` xp experiment build their
        cell params through this method, so a seed point evaluated by
        either side lands in the same cache cell.
        """
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_params(cls, params: Mapping) -> "TunePoint":
        """Inverse of :meth:`params` (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigError(
                f"unknown TunePoint field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**dict(params))

    def label(self) -> str:
        """Compact human-readable identity for tables and logs."""
        parts = [
            f"pes={self.num_pes}",
            f"lanes={self.vector_lanes}",
            f"buf={self.pe_buffer_bytes}B",
            f"bus={self.bus_bits}b",
            f"dtype={self.dtype_bits}b",
            f"dram={self.dram_gbps:g}GB/s",
        ]
        if self.tech_node_nm != BASE_TECH_NM:
            parts.append(f"node={self.tech_node_nm:g}nm")
        return " ".join(parts)


class ParamSpace:
    """A cross-product of per-knob value lists, validity-filtered.

    ``axes`` maps :class:`TunePoint` field names to candidate values;
    unnamed knobs stay at the anchor default.  Invalid combinations
    (rejected by ``AcceleratorConfig.__post_init__`` or the DRAM/node
    checks) are excluded from :meth:`points` rather than raised, so a
    space can be declared loosely and still sweep cleanly.
    """

    def __init__(self, axes: Mapping[str, Sequence] | None = None, *, name: str = "custom") -> None:
        axes = dict(axes or {})
        known = {f.name for f in dataclasses.fields(TunePoint)}
        unknown = sorted(set(axes) - known)
        if unknown:
            raise ConfigError(
                f"unknown ParamSpace axis/axes {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        for axis, values in axes.items():
            if not values:
                raise ConfigError(f"axis {axis!r} must not be empty")
        self.name = name
        self.axes = {axis: tuple(values) for axis, values in axes.items()}

    def __iter__(self) -> Iterator[TunePoint]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.points())

    def size(self) -> int:
        """Cross-product cardinality *before* validity filtering."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> list[TunePoint]:
        """All valid points, in deterministic axis-declaration order."""
        names = list(self.axes)
        valid: list[TunePoint] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            try:
                valid.append(TunePoint(**dict(zip(names, combo))))
            except ConfigError:
                continue
        return valid


# ------------------------------------------------------------- presets ----

def _preset_axes(name: str) -> dict:
    if name == "paper_default":
        # The anchor alone: Sec. VII-A's fixed system as a 1-point space.
        return {}
    if name == "smoke":
        # 32 valid points (2*2*2*2*2), anchor included as a grid point;
        # small enough for CI, rich enough for a non-trivial front.
        return {
            "num_pes": (1024, 2048),
            "pe_buffer_bytes": (256, 512),
            "bus_bits": (256, 512),
            "dtype_bits": (16, 32),
            "dram_gbps": (32.0, 64.0),
        }
    if name == "full":
        # The paper's ablation ranges crossed with the tech-node sweep.
        return {
            "num_pes": (256, 1024, 2048, 4096, 8192),
            "pe_buffer_bytes": (128, 256, 512, 1024),
            "bus_bits": (16, 128, 256, 512, 1024, 2048),
            "dtype_bits": (8, 16, 32),
            "dram_gbps": (16.0, 64.0, 256.0, 1024.0),
            "tech_node_nm": (28.0, 16.0, 7.0),
        }
    raise ConfigError(
        f"unknown tune space {name!r} (choose from {', '.join(space_names())})"
    )


def space_names() -> tuple[str, ...]:
    """Names :func:`space` accepts."""
    return ("paper_default", "smoke", "full")


def space(name: str = "smoke") -> ParamSpace:
    """A named preset space, anchored at ``paper_default``."""
    return ParamSpace(_preset_axes(name), name=name)


# ---------------------------------------------------------- seed points ----

#: Seed points registered by source (the xp ablation experiments).
_SEED_POINTS: dict[str, tuple[TunePoint, ...]] = {}


def register_seed_points(source: str, points: Iterable[TunePoint]) -> None:
    """Register *points* (e.g. an ablation grid) as tuner seeds.

    Registration is idempotent per *source*; the xp paper suite calls
    this at import so its ablation grids and the tuner share artifact
    cells.
    """
    _SEED_POINTS[source] = tuple(points)


def seed_points() -> list[TunePoint]:
    """All registered seed points, deduplicated, in registration order."""
    seen: set[TunePoint] = set()
    ordered: list[TunePoint] = []
    for group in _SEED_POINTS.values():
        for point in group:
            if point not in seen:
                seen.add(point)
                ordered.append(point)
    return ordered


def ablation_seed_points() -> list[TunePoint]:
    """Seed points from the paper's hardware ablations (loads the suite)."""
    from repro.xp.registry import load_paper_suite

    load_paper_suite()
    return seed_points()
