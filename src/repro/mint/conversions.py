"""Hardware-path matrix format conversions (Fig. 8).

Every routine takes the source encoding and a :class:`BlockSet`, performs
the conversion through the building blocks the paper's datapath uses —
never materializing a dense intermediate unless the paper's own path does —
and returns ``(target, cycles)``.

Cycle model: a conversion is one or more *passes*; within a pass the chained
blocks are pipelined, so the pass costs the **maximum** of its blocks' cycle
counts (throughput-bound; pipeline fill is inside each block's count).
Passes are sequential, so their costs add.  MINT additionally overlaps the
first pass with streaming the source from memory (Sec. V-B: "MINT is
pipelined to start conversion while streaming in data from memory"), which
is why the first pass is costed as max(stream-in, compute) too.

Each conversion is verified element-exact against the dense-oracle
``repro.formats.convert`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.formats.bsr import BsrMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix, PAD_COL
from repro.formats.registry import Format
from repro.formats.rlc import DEFAULT_RUN_BITS, RlcMatrix
from repro.formats._runlength import encode_runs
from repro.formats.zvc import ZvcMatrix
from repro.mint.blockset import BlockSet
from repro.mint.graph import register_conversion


# --------------------------------------------------------------------------
# Fig. 8c: CSR -> CSC
# --------------------------------------------------------------------------
@register_conversion(Format.CSR, Format.CSC)
def csr_to_csc(src: CsrMatrix, blocks: BlockSet) -> tuple[CscMatrix, int]:
    """Transpose-reencode via histogram + prefix sum + scatter (Fig. 8c)."""
    m, k = src.shape
    nnz = src.stored
    # Pass 1: stream col_ids; sorted chunks feed the cluster counter (steps
    # 1-3), producing per-column counts.
    c_read = blocks.memctrl.stream(nnz)
    _sorted, c_sort = blocks.sorter.sort_chunks(src.col_ids)
    counts, c_count = blocks.cluster.histogram(src.col_ids, k)
    pass1 = max(c_read, c_sort, c_count)
    # Step 5: prefix sum over the column counts -> col_ptr.
    csum, c_scan = blocks.prefix.scan(counts)
    col_ptr = np.concatenate([[0], csum]).astype(np.int64)
    # Steps 6-9: iterate CSR fields, scattering each entry to the slot its
    # working col_ptr designates (then bumping it).  A stable counting sort
    # by column id computes exactly those destinations.
    order = np.argsort(src.col_ids, kind="stable")
    rows = np.repeat(np.arange(m, dtype=np.int64), src.row_lengths())
    values = src.values[order]
    row_ids = rows[order]
    c_scatter_read = blocks.memctrl.stream(2 * nnz)  # values + col_ids in
    c_scatter_write = blocks.memctrl.stream(2 * nnz)  # values + row_ids out
    pass2 = max(c_scatter_read, c_scatter_write)
    out = CscMatrix(src.shape, values, row_ids, col_ptr, dtype_bits=src.dtype_bits)
    return out, pass1 + c_scan + pass2


@register_conversion(Format.CSC, Format.CSR)
def csc_to_csr(src: CscMatrix, blocks: BlockSet) -> tuple[CsrMatrix, int]:
    """Mirror of Fig. 8c with rows and columns exchanged."""
    m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(nnz)
    _sorted, c_sort = blocks.sorter.sort_chunks(src.row_ids)
    counts, c_count = blocks.cluster.histogram(src.row_ids, m)
    pass1 = max(c_read, c_sort, c_count)
    csum, c_scan = blocks.prefix.scan(counts)
    row_ptr = np.concatenate([[0], csum]).astype(np.int64)
    order = np.argsort(src.row_ids, kind="stable")
    cols = np.repeat(np.arange(k, dtype=np.int64), src.col_lengths())
    values = src.values[order]
    col_ids = cols[order]
    pass2 = max(blocks.memctrl.stream(2 * nnz), blocks.memctrl.stream(2 * nnz))
    out = CsrMatrix(src.shape, values, col_ids, row_ptr, dtype_bits=src.dtype_bits)
    return out, pass1 + c_scan + pass2


# --------------------------------------------------------------------------
# Fig. 8d: RLC -> COO
# --------------------------------------------------------------------------
@register_conversion(Format.RLC, Format.COO)
def rlc_to_coo(src: RlcMatrix, blocks: BlockSet) -> tuple[CooMatrix, int]:
    """Positions by prefix sum, coordinates by parallel divide/mod (Fig. 8d)."""
    m, k = src.shape
    entries = src.entries
    c_read = blocks.memctrl.stream(2 * entries)  # runs + levels
    # Step 2: +1 offsets (position of each level is gap + its own slot).
    sums, c_scan = blocks.prefix.scan(src.runs + 1)
    positions = sums - 1
    # Step 4: row = pos // K, col = pos % K.
    row_ids, col_ids, c_div = blocks.divmod.divmod_by(positions, k)
    pass1 = max(c_read, c_scan, c_div)
    # Padding entries carry an explicit zero level; drop them on write-out.
    keep = src.levels != 0.0
    c_write = blocks.memctrl.stream(3 * int(keep.sum()))
    out = CooMatrix(
        src.shape,
        src.levels[keep],
        row_ids[keep],
        col_ids[keep],
        dtype_bits=src.dtype_bits,
    )
    return out, pass1 + c_write


@register_conversion(Format.RLC, Format.DENSE)
def rlc_to_dense(src: RlcMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """RLC decode: prefix-summed positions scattered into a zeroed buffer."""
    m, k = src.shape
    entries = src.entries
    c_read = blocks.memctrl.stream(2 * entries)
    sums, c_scan = blocks.prefix.scan(src.runs + 1)
    positions = sums - 1
    flat, c_write = blocks.memctrl.scatter(src.levels, positions, m * k)
    c_fill = blocks.memctrl.stream(m * k)  # zero-fill the dense buffer
    out = DenseMatrix(flat.reshape(m, k), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan) + max(c_write, c_fill)


# --------------------------------------------------------------------------
# Fig. 8e: CSR -> BSR
# --------------------------------------------------------------------------
@register_conversion(Format.CSR, Format.BSR, accepts=("block_shape",))
def csr_to_bsr(
    src: CsrMatrix,
    blocks: BlockSet,
    block_shape: tuple[int, int] = (2, 2),
) -> tuple[BsrMatrix, int]:
    """Blockize via divide/mod block positions + initialization flags (Fig. 8e)."""
    m, k = src.shape
    br, bc = int(block_shape[0]), int(block_shape[1])
    nnz = src.stored
    rows = np.repeat(np.arange(m, dtype=np.int64), src.row_lengths())
    c_read = blocks.memctrl.stream(2 * nnz)
    # Steps 1-2: block coordinates and intra-block offsets by divide/mod.
    grs, ers, c_div1 = blocks.divmod.divmod_by(rows, br)
    gcs, ecs, c_div2 = blocks.divmod.divmod_by(src.col_ids, bc)
    pass1 = max(c_read, c_div1 + c_div2)
    # Step 2-3: register flags track initialized blocks; a stable sort by
    # (block row, block col) realizes the same grouping.
    grid_cols = -(-k // bc)
    grid_rows = -(-m // br)
    keys = grs * grid_cols + gcs
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_block = np.empty(nnz, dtype=bool)
    if nnz:
        new_block[0] = True
        new_block[1:] = sorted_keys[1:] != sorted_keys[:-1]
    block_index_of_entry = np.cumsum(new_block) - 1 if nnz else np.empty(0, np.int64)
    unique_keys = sorted_keys[new_block] if nnz else np.empty(0, np.int64)
    nblocks = len(unique_keys)
    blocks.cluster.stats.compares += nnz  # the initialized-block flag checks
    # Zero-filled block value buffers, scatter each entry into its slot.
    values = np.zeros((nblocks, br, bc), dtype=np.float64)
    values[
        block_index_of_entry, ers[order], ecs[order]
    ] = src.values[order]
    c_fill = blocks.memctrl.stream(nblocks * br * bc)
    c_write = blocks.memctrl.stream(nnz)
    # Steps 3/5: block_row_ptr from per-block-row unique counts + prefix sum.
    block_gr = unique_keys // grid_cols
    counts, c_count = blocks.cluster.histogram(block_gr, grid_rows)
    csum, c_scan = blocks.prefix.scan(counts)
    block_row_ptr = np.concatenate([[0], csum]).astype(np.int64)
    block_col_ids = unique_keys % grid_cols
    out = BsrMatrix(
        src.shape,
        values,
        block_col_ids,
        block_row_ptr,
        block_shape=(br, bc),
        dtype_bits=src.dtype_bits,
    )
    return out, pass1 + max(c_fill, c_write) + c_count + c_scan


# --------------------------------------------------------------------------
# Dense <-> compressed
# --------------------------------------------------------------------------
@register_conversion(Format.DENSE, Format.COO)
def dense_to_coo(src: DenseMatrix, blocks: BlockSet) -> tuple[CooMatrix, int]:
    """Nonzero scan + prefix-sum compaction + divide/mod coordinates."""
    m, k = src.shape
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(m * k)
    indicator = (flat != 0.0).astype(np.int64)
    blocks.cluster.stats.compares += m * k  # zero-detect comparators
    _sums, c_scan = blocks.prefix.scan(indicator)
    positions = np.flatnonzero(indicator)
    rows, cols, c_div = blocks.divmod.divmod_by(positions, k)
    c_write = blocks.memctrl.stream(3 * len(positions))
    out = CooMatrix(src.shape, flat[positions], rows, cols, dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan, c_div) + c_write


@register_conversion(Format.DENSE, Format.CSR)
def dense_to_csr(src: DenseMatrix, blocks: BlockSet) -> tuple[CsrMatrix, int]:
    """Dense -> COO coordinates, then row-pointer compression by prefix sum."""
    coo, c_coo = dense_to_coo(src, blocks)
    counts, c_count = blocks.cluster.histogram(coo.row_ids, src.shape[0])
    csum, c_scan = blocks.prefix.scan(counts)
    row_ptr = np.concatenate([[0], csum]).astype(np.int64)
    out = CsrMatrix(
        src.shape, coo.values, coo.col_ids, row_ptr, dtype_bits=src.dtype_bits
    )
    return out, c_coo + c_count + c_scan


@register_conversion(Format.DENSE, Format.CSC)
def dense_to_csc(src: DenseMatrix, blocks: BlockSet) -> tuple[CscMatrix, int]:
    """Dense -> COO, then column-major counting-sort into CSC."""
    coo, c_coo = dense_to_coo(src, blocks)
    csr = CsrMatrix(
        src.shape,
        coo.values,
        coo.col_ids,
        np.concatenate(
            [[0], np.cumsum(np.bincount(coo.row_ids, minlength=src.shape[0]))]
        ).astype(np.int64),
        dtype_bits=src.dtype_bits,
    )
    out, c_t = csr_to_csc(csr, blocks)
    return out, c_coo + c_t


@register_conversion(Format.DENSE, Format.ZVC)
def dense_to_zvc(src: DenseMatrix, blocks: BlockSet) -> tuple[ZvcMatrix, int]:
    """Zero-detect produces the mask; prefix sum compacts the values [9]."""
    m, k = src.shape
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(m * k)
    mask = flat != 0.0
    blocks.cluster.stats.compares += m * k
    _sums, c_scan = blocks.prefix.scan(mask.astype(np.int64))
    c_write = blocks.memctrl.stream(int(mask.sum()))
    out = ZvcMatrix(src.shape, flat[mask], mask, dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan) + c_write


@register_conversion(Format.ZVC, Format.DENSE)
def zvc_to_dense(src: ZvcMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Mask-driven expansion: prefix sum of the mask addresses each value."""
    m, k = src.shape
    c_read = blocks.memctrl.stream(src.stored)
    _sums, c_scan = blocks.prefix.scan(src.mask.astype(np.int64))
    positions = np.flatnonzero(src.mask)
    flat, c_write = blocks.memctrl.scatter(src.values, positions, m * k)
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(flat.reshape(m, k), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan) + max(c_write, c_fill)


@register_conversion(Format.DENSE, Format.RLC)
def dense_to_rlc(src: DenseMatrix, blocks: BlockSet) -> tuple[RlcMatrix, int]:
    """Gap encoding: zero-run counters emit (run, level) pairs."""
    m, k = src.shape
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(m * k)
    blocks.cluster.stats.compares += m * k  # zero detection
    runs, levels = encode_runs(flat, DEFAULT_RUN_BITS)
    blocks.prefix.stats.int_adds += m * k  # run counters increment per element
    c_write = blocks.memctrl.stream(2 * len(levels))
    out = RlcMatrix(
        src.shape, runs, levels, dtype_bits=src.dtype_bits, run_bits=DEFAULT_RUN_BITS
    )
    return out, max(c_read, c_write)


@register_conversion(Format.CSR, Format.DENSE)
def csr_to_dense(src: CsrMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Pointer expansion + scatter into a zero-filled buffer."""
    m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(2 * nnz + m + 1)
    rows = np.repeat(np.arange(m, dtype=np.int64), src.row_lengths())
    flat, c_write = blocks.memctrl.scatter(src.values, rows * k + src.col_ids, m * k)
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(flat.reshape(m, k), dtype_bits=src.dtype_bits)
    return out, max(c_read, 0) + max(c_write, c_fill)


@register_conversion(Format.CSC, Format.DENSE)
def csc_to_dense(src: CscMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Pointer expansion + scatter into a zero-filled buffer."""
    m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(2 * nnz + k + 1)
    cols = np.repeat(np.arange(k, dtype=np.int64), src.col_lengths())
    flat, c_write = blocks.memctrl.scatter(src.values, src.row_ids * k + cols, m * k)
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(flat.reshape(m, k), dtype_bits=src.dtype_bits)
    return out, max(c_read, 0) + max(c_write, c_fill)


@register_conversion(Format.COO, Format.DENSE)
def coo_to_dense(src: CooMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Coordinate scatter into a zero-filled buffer."""
    m, k = src.shape
    c_read = blocks.memctrl.stream(3 * src.stored)
    flat, c_write = blocks.memctrl.scatter(
        src.values, src.row_ids * k + src.col_ids, m * k
    )
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(flat.reshape(m, k), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_write, c_fill)


@register_conversion(Format.COO, Format.CSR)
def coo_to_csr(src: CooMatrix, blocks: BlockSet) -> tuple[CsrMatrix, int]:
    """Counting sort by row id: histogram + prefix sum + scatter."""
    m, _k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(3 * nnz)
    counts, c_count = blocks.cluster.histogram(src.row_ids, m)
    csum, c_scan = blocks.prefix.scan(counts)
    row_ptr = np.concatenate([[0], csum]).astype(np.int64)
    order = np.lexsort((src.col_ids, src.row_ids))
    c_write = blocks.memctrl.stream(2 * nnz)
    out = CsrMatrix(
        src.shape,
        src.values[order],
        src.col_ids[order],
        row_ptr,
        dtype_bits=src.dtype_bits,
    )
    return out, max(c_read, c_count) + c_scan + c_write


@register_conversion(Format.COO, Format.CSC)
def coo_to_csc(src: CooMatrix, blocks: BlockSet) -> tuple[CscMatrix, int]:
    """Counting sort by column id: histogram + prefix sum + scatter."""
    _m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(3 * nnz)
    counts, c_count = blocks.cluster.histogram(src.col_ids, k)
    csum, c_scan = blocks.prefix.scan(counts)
    col_ptr = np.concatenate([[0], csum]).astype(np.int64)
    order = np.lexsort((src.row_ids, src.col_ids))
    c_write = blocks.memctrl.stream(2 * nnz)
    out = CscMatrix(
        src.shape,
        src.values[order],
        src.row_ids[order],
        col_ptr,
        dtype_bits=src.dtype_bits,
    )
    return out, max(c_read, c_count) + c_scan + c_write


@register_conversion(Format.CSR, Format.COO)
def csr_to_coo(src: CsrMatrix, blocks: BlockSet) -> tuple[CooMatrix, int]:
    """Row-pointer expansion (the inverse counting sort is trivial)."""
    m, _k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(2 * nnz + m + 1)
    rows = np.repeat(np.arange(m, dtype=np.int64), src.row_lengths())
    c_write = blocks.memctrl.stream(3 * nnz)
    out = CooMatrix(src.shape, src.values, rows, src.col_ids, dtype_bits=src.dtype_bits)
    return out, max(c_read, c_write)


@register_conversion(Format.CSC, Format.COO)
def csc_to_coo(src: CscMatrix, blocks: BlockSet) -> tuple[CooMatrix, int]:
    """Column-pointer expansion, then reorder row-major."""
    _m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(2 * nnz + k + 1)
    cols = np.repeat(np.arange(k, dtype=np.int64), src.col_lengths())
    order = np.lexsort((cols, src.row_ids))
    c_write = blocks.memctrl.stream(3 * nnz)
    out = CooMatrix(
        src.shape,
        src.values[order],
        src.row_ids[order],
        cols[order],
        dtype_bits=src.dtype_bits,
    )
    return out, max(c_read, c_write)


@register_conversion(Format.DENSE, Format.BSR, accepts=("block_shape",))
def dense_to_bsr(
    src: DenseMatrix, blocks: BlockSet, block_shape: tuple[int, int] = (2, 2)
) -> tuple[BsrMatrix, int]:
    """Dense -> CSR -> BSR composition through the block library."""
    csr, c1 = dense_to_csr(src, blocks)
    bsr, c2 = csr_to_bsr(csr, blocks, block_shape)
    return bsr, c1 + c2


@register_conversion(Format.BSR, Format.DENSE)
def bsr_to_dense(src: BsrMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Block expansion into a zero-filled buffer."""
    m, k = src.shape
    br, bc = src.block_shape
    c_read = blocks.memctrl.stream(src.nblocks * (br * bc + 1))
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_fill)


@register_conversion(Format.DENSE, Format.DIA)
def dense_to_dia(src: DenseMatrix, blocks: BlockSet) -> tuple[DiaMatrix, int]:
    """Diagonal bucketing: offset = col - row per nonzero, then gather."""
    m, k = src.shape
    c_read = blocks.memctrl.stream(m * k)
    blocks.cluster.stats.compares += m * k  # zero detection
    out = DiaMatrix.from_dense(src.values, dtype_bits=src.dtype_bits)
    c_write = blocks.memctrl.stream(out.ndiags * out.padded_length)
    return out, max(c_read, c_write)


@register_conversion(Format.DIA, Format.DENSE)
def dia_to_dense(src: DiaMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Diagonal expansion into a zero-filled buffer."""
    m, k = src.shape
    c_read = blocks.memctrl.stream(src.ndiags * (src.padded_length + 1))
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_fill)


@register_conversion(Format.DENSE, Format.ELL)
def dense_to_ell(src: DenseMatrix, blocks: BlockSet) -> tuple[EllMatrix, int]:
    """Row compaction into fixed-width slots: nonzero scan + row histogram."""
    import numpy as np

    m, k = src.shape
    c_read = blocks.memctrl.stream(m * k)
    blocks.cluster.stats.compares += m * k  # zero detection
    row_nnz = np.count_nonzero(src.values, axis=1).astype(np.int64)
    _counts, c_count = blocks.cluster.histogram(
        np.repeat(np.arange(m, dtype=np.int64), row_nnz), m
    )
    out = EllMatrix.from_dense(src.values, dtype_bits=src.dtype_bits)
    c_write = blocks.memctrl.stream(2 * m * out.width)
    return out, max(c_read, c_count) + c_write


@register_conversion(Format.ELL, Format.DENSE)
def ell_to_dense(src: EllMatrix, blocks: BlockSet) -> tuple[DenseMatrix, int]:
    """Slot expansion: scatter each non-padding slot by its column id."""
    m, k = src.shape
    c_read = blocks.memctrl.stream(2 * m * src.width)
    blocks.cluster.stats.compares += m * src.width  # padding detection
    c_fill = blocks.memctrl.stream(m * k)
    out = DenseMatrix(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_fill)


@register_conversion(Format.CSR, Format.ELL)
def csr_to_ell(src: CsrMatrix, blocks: BlockSet) -> tuple[EllMatrix, int]:
    """Row-pointer-driven compaction without materializing dense."""
    import numpy as np

    m, k = src.shape
    nnz = src.stored
    c_read = blocks.memctrl.stream(2 * nnz + m + 1)
    lengths = src.row_lengths()
    width = int(lengths.max()) if m and nnz else 0
    values = np.zeros((m, width), dtype=np.float64)
    col_ids = np.full((m, width), PAD_COL, dtype=np.int64)
    # Each entry lands at (its row, its rank within the row): the rank is
    # the entry's global position minus its row's pointer base.
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    slots = np.arange(nnz, dtype=np.int64) - np.repeat(src.row_ptr[:-1], lengths)
    values[rows, slots] = src.values
    col_ids[rows, slots] = src.col_ids
    out = EllMatrix(src.shape, values, col_ids, dtype_bits=src.dtype_bits)
    c_write = blocks.memctrl.stream(2 * m * width)
    return out, max(c_read, c_write)
