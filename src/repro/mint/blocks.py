"""MINT building blocks (Fig. 8a / Fig. 9).

Each block is functional — it computes real results on numpy arrays — and
self-accounting: every invocation returns the result plus the cycles it
occupies, and accumulates operation counts for energy reporting.  Blocks are
pipelined: an input of n elements through a block of width ``lanes`` and
pipeline depth ``d`` takes ``ceil(n / lanes) + d - 1`` cycles, with
initiation interval 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.hardware.area import PrefixSumDesign
from repro.util.bits import ceil_div


@dataclass
class BlockStats:
    """Operation counters a block accumulates across invocations."""

    int_adds: int = 0
    int_mults: int = 0
    divides: int = 0
    mods: int = 0
    compares: int = 0
    elements_moved: int = 0

    def __iadd__(self, other: "BlockStats") -> "BlockStats":
        self.int_adds += other.int_adds
        self.int_mults += other.int_mults
        self.divides += other.divides
        self.mods += other.mods
        self.compares += other.compares
        self.elements_moved += other.elements_moved
        return self


def _pipeline_cycles(n: int, lanes: int, depth: int) -> int:
    """Cycles for n elements through a ``lanes``-wide, ``depth``-deep pipe."""
    if n <= 0:
        return 0
    return ceil_div(n, lanes) + depth - 1


class PrefixSumUnit:
    """Prefix-sum (scan) unit with the three Fig. 9 implementations.

    * ``SERIAL_CHAIN`` — store-and-forward chain with an offset-adder row:
      N-deep pipeline, N results/cycle, 2N adders.
    * ``WORK_EFFICIENT`` — Brent-Kung: 2*log2(N)-1 stages, ~2N adders total
      work per chunk.
    * ``HIGHLY_PARALLEL`` — Sklansky: log2(N) stages, (N/2)*log2(N) adders.

    All three produce identical inclusive prefix sums; they differ in
    latency, adder count and wiring — the ablation of
    ``benchmarks/bench_ablation_prefix.py``.
    """

    def __init__(
        self,
        design: PrefixSumDesign = PrefixSumDesign.HIGHLY_PARALLEL,
        width: int = 32,
    ) -> None:
        if width < 1 or width & (width - 1):
            raise ConfigError(f"prefix-sum width must be a power of two, got {width}")
        self.design = design
        self.width = width
        self.stats = BlockStats()

    @property
    def pipeline_depth(self) -> int:
        """Stages between first input and first output."""
        n = self.width
        log_n = max(1, int(np.log2(n)))
        if self.design is PrefixSumDesign.SERIAL_CHAIN:
            return n
        if self.design is PrefixSumDesign.WORK_EFFICIENT:
            return 2 * log_n - 1
        return log_n

    @property
    def adder_count(self) -> int:
        """Physical adders instantiated (area driver)."""
        n = self.width
        log_n = max(1, int(np.log2(n)))
        if self.design is PrefixSumDesign.SERIAL_CHAIN:
            return 2 * n  # chain + offset row
        if self.design is PrefixSumDesign.WORK_EFFICIENT:
            return 2 * n - 2 - log_n
        return (n // 2) * log_n

    def scan(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Inclusive prefix sum; returns (sums, cycles occupied)."""
        arr = np.asarray(values, dtype=np.int64).ravel()
        n = len(arr)
        cycles = _pipeline_cycles(n, self.width, self.pipeline_depth)
        self.stats += BlockStats(
            int_adds=ceil_div(n, self.width) * self.adder_count if n else 0,
            elements_moved=n,
        )
        return np.cumsum(arr), cycles


class ParallelDivMod:
    """Bank of pipelined integer divide + modulo units.

    The paper limits MINT to eight parallel units "due to how hardware
    expensive the modules are" (Sec. VII-B); they are the dominant area and
    power consumer of MINT_m.
    """

    PIPELINE_DEPTH = 8  # pipelined radix divider latency

    def __init__(self, units: int = 8) -> None:
        if units < 1:
            raise ConfigError("need at least one divide/mod unit")
        self.units = units
        self.stats = BlockStats()

    def divmod_by(
        self, numerators: np.ndarray, divisor: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Elementwise (numerator // divisor, numerator % divisor, cycles)."""
        if divisor <= 0:
            raise ConfigError(f"divisor must be positive, got {divisor}")
        arr = np.asarray(numerators, dtype=np.int64).ravel()
        n = len(arr)
        cycles = _pipeline_cycles(n, self.units, self.PIPELINE_DEPTH)
        self.stats += BlockStats(divides=n, mods=n, elements_moved=n)
        return arr // divisor, arr % divisor, cycles


class SortingNetwork:
    """Pipelined bitonic sorting network over fixed-width chunks.

    Used by the CSR->CSC path to sort col-id chunks before cluster counting
    (Fig. 8c step 2).  Stage count is the bitonic ``log2(w)*(log2(w)+1)/2``.
    """

    def __init__(self, width: int = 16) -> None:
        if width < 2 or width & (width - 1):
            raise ConfigError(f"sorter width must be a power of two >= 2, got {width}")
        self.width = width
        self.stats = BlockStats()

    @property
    def stages(self) -> int:
        """Pipeline stages of the bitonic network."""
        log_w = int(np.log2(self.width))
        return log_w * (log_w + 1) // 2

    @property
    def comparator_count(self) -> int:
        """Physical compare-exchange elements."""
        return (self.width // 2) * self.stages

    def sort_chunks(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Sort each width-sized chunk independently; returns (out, cycles)."""
        arr = np.asarray(values, dtype=np.int64).ravel()
        n = len(arr)
        if n == 0:
            return arr, 0
        out = arr.copy()
        for lo in range(0, n, self.width):
            out[lo : lo + self.width] = np.sort(out[lo : lo + self.width])
        cycles = _pipeline_cycles(n, self.width, self.stages)
        self.stats += BlockStats(
            compares=ceil_div(n, self.width) * self.comparator_count,
            elements_moved=n,
        )
        return out, cycles


class ClusterCounter:
    """Counts occurrences of key values in a stream (Fig. 8c step 3).

    Functionally a bounded histogram; in hardware a bank of match counters
    incremented as sorted chunks stream past.
    """

    def __init__(self, lanes: int = 16) -> None:
        if lanes < 1:
            raise ConfigError("cluster counter needs at least one lane")
        self.lanes = lanes
        self.stats = BlockStats()

    def histogram(self, keys: np.ndarray, num_bins: int) -> tuple[np.ndarray, int]:
        """Count key occurrences into *num_bins*; returns (counts, cycles)."""
        arr = np.asarray(keys, dtype=np.int64).ravel()
        n = len(arr)
        counts = np.bincount(arr, minlength=num_bins).astype(np.int64)
        cycles = _pipeline_cycles(n, self.lanes, 1)
        self.stats += BlockStats(int_adds=n, compares=n, elements_moved=n)
        return counts, cycles


class MemoryController:
    """Scratchpad read/write streams with address generation (Fig. 8a).

    Models the address generators + FIFOs + crossbar: moving n elements at
    ``lanes`` per cycle.  Also exposes a gather/scatter helper whose cycle
    cost is the same streaming cost (the crossbar hides bank conflicts in
    this model).
    """

    def __init__(self, lanes: int = 16) -> None:
        if lanes < 1:
            raise ConfigError("memory controller needs at least one lane")
        self.lanes = lanes
        self.stats = BlockStats()

    def stream(self, n_elements: int) -> int:
        """Cycles to stream *n_elements* through the controller."""
        if n_elements < 0:
            raise ConfigError("element count must be >= 0")
        self.stats += BlockStats(elements_moved=n_elements)
        return _pipeline_cycles(n_elements, self.lanes, 1)

    def scatter(
        self, values: np.ndarray, positions: np.ndarray, size: int
    ) -> tuple[np.ndarray, int]:
        """Place values[i] at positions[i] in a fresh buffer of *size*."""
        out = np.zeros(size, dtype=np.asarray(values).dtype)
        out[np.asarray(positions, dtype=np.int64)] = values
        cycles = self.stream(len(np.asarray(values).ravel()))
        return out, cycles
