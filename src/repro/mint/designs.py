"""MINT design points: baseline, merged, merged + reuse (Sec. V-A, VII-B).

* **MINT_b** — one dedicated converter per representative conversion
  (Fig. 8c-f), each instantiating its own blocks.
* **MINT_m** — the union of building blocks, shared by all conversions
  ("merging building blocks to one general-purpose converter").  The single
  prefix-sum unit is time-multiplexed across a conversion's sequential
  phases, so the union carries one even though Dense->CSF's pipeline drawing
  shows two.
* **MINT_mr** — MINT_m minus the blocks borrowed from the accelerator
  (prefix sums on the MAC reduction network, divides on the activation
  unit, multiplies on the MACs) plus the mux/controller/datapath glue that
  borrowing requires.

With the default :class:`~repro.hardware.area.AreaModel` calibration these
compose to ~0.95 / 0.41 / 0.23 mm^2 with divide+mod at ~74% / ~65% of
MINT_m's area / power — the published aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hardware.area import DEFAULT_AREA, AreaModel


class MintDesign(Enum):
    """The three MINT implementations of Fig. 8a."""

    BASELINE = "MINT_b"
    MERGED = "MINT_m"
    MERGED_REUSE = "MINT_mr"


#: Block inventory of each dedicated converter (MINT_b sums these).
CONVERTER_BLOCKS: dict[str, dict[str, int]] = {
    "csr_to_csc": {
        "sorter": 1,
        "cluster_counter": 1,
        "prefix_sum": 1,
        "comparator_bank": 1,
        "mem_controller": 1,
    },
    "rlc_to_coo": {
        "prefix_sum": 1,
        "divider": 8,
        "mod": 8,
        "mem_controller": 1,
    },
    # The BSR block-position path only mods row/col ids by the block size, so
    # the dedicated converter provisions a half-width mod bank.
    "csr_to_bsr": {
        "mod": 4,
        "comparator_bank": 1,
        "prefix_sum": 1,
        "mem_controller": 1,
        "block_flags": 1,
    },
    "dense_to_csf": {
        "prefix_sum": 2,
        "divider": 8,
        "mod": 8,
        "comparator_bank": 1,
        "multiplier": 8,
        "mem_controller": 1,
    },
}

#: The merged complement (union across converters; one prefix unit).
MERGED_BLOCKS: dict[str, int] = {
    "sorter": 1,
    "cluster_counter": 1,
    "prefix_sum": 1,
    "comparator_bank": 1,
    "mem_controller": 1,
    "divider": 8,
    "mod": 8,
    "multiplier": 8,
    "block_flags": 1,
}

#: Blocks MINT_mr borrows from the host accelerator instead of owning.
REUSED_BLOCKS: tuple[str, ...] = ("prefix_sum", "divider", "multiplier")


def _block_cost(model: AreaModel, name: str) -> tuple[float, float]:
    """(area mm^2, power mW) of one instance of *name*."""
    return (
        getattr(model, f"{name}_area"),
        getattr(model, f"{name}_power"),
    )


def _inventory_cost(
    model: AreaModel, inventory: dict[str, int]
) -> tuple[float, float]:
    area = power = 0.0
    for name, count in inventory.items():
        a, p = _block_cost(model, name)
        area += count * a
        power += count * p
    return area, power


def mint_area(design: MintDesign, model: AreaModel = DEFAULT_AREA) -> float:
    """Total area (mm^2) of a MINT design point."""
    return _area_power(design, model)[0]


def mint_power(design: MintDesign, model: AreaModel = DEFAULT_AREA) -> float:
    """Total power (mW @ 1 GHz) of a MINT design point."""
    return _area_power(design, model)[1]


def _area_power(design: MintDesign, model: AreaModel) -> tuple[float, float]:
    if design is MintDesign.BASELINE:
        area = power = 0.0
        for inventory in CONVERTER_BLOCKS.values():
            a, p = _inventory_cost(model, inventory)
            area += a
            power += p
        return area, power
    area, power = _inventory_cost(model, MERGED_BLOCKS)
    if design is MintDesign.MERGED:
        return area, power
    # MERGED_REUSE: drop borrowed blocks, add the reuse glue.
    for name in REUSED_BLOCKS:
        a, p = _block_cost(model, name)
        count = MERGED_BLOCKS[name]
        area -= count * a
        power -= count * p
    return area + model.reuse_glue_area, power + model.reuse_glue_power


def divmod_fraction(model: AreaModel = DEFAULT_AREA) -> tuple[float, float]:
    """(area, power) share of the divide+mod bank within MINT_m.

    Sec. VII-B: "Together, they consume 74% and 65% of MINT_m's area and
    power respectively."
    """
    total_area, total_power = _area_power(MintDesign.MERGED, model)
    dm_area = 8 * (model.divider_area + model.mod_area)
    dm_power = 8 * (model.divider_power + model.mod_power)
    return dm_area / total_area, dm_power / total_power


def accelerator_overhead(
    model: AreaModel = DEFAULT_AREA,
) -> tuple[float, float]:
    """MINT_m's (area, power) fraction of the 16384-MAC accelerator.

    Sec. VII-B: "MINT_m consumes 0.5% of its area and 0.4% of its power."
    """
    area, power = _area_power(MintDesign.MERGED, model)
    return area / model.accelerator_area, power / model.accelerator_power
