"""Hardware-path 3-D tensor format conversions (Fig. 8f and generalizations).

Same conventions as :mod:`repro.mint.conversions`: functional results,
pipelined-pass cycle model, verified against the dense oracle.
"""

from __future__ import annotations

import numpy as np

from repro.formats._runlength import encode_runs
from repro.formats.csf import CsfTensor
from repro.formats.hicoo import HicooTensor
from repro.formats.rlc import DEFAULT_RUN_BITS
from repro.formats.tensor_coo import CooTensor
from repro.formats.tensor_dense import DenseTensor
from repro.formats.tensor_flat import RlcTensor, ZvcTensor
from repro.formats.registry import Format
from repro.mint.blockset import BlockSet
from repro.mint.graph import register_conversion


def _linear_to_coords(
    positions: np.ndarray, shape: tuple[int, int, int], blocks: BlockSet
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Fig. 8f step 3: the divide/mod chain from linear index to (x, y, z)."""
    _x, y_dim, z_dim = shape
    xs, rem, c1 = blocks.divmod.divmod_by(positions, y_dim * z_dim)
    ys, zs, c2 = blocks.divmod.divmod_by(rem, z_dim)
    return xs, ys, zs, c1 + c2


@register_conversion(Format.DENSE, Format.COO, tensor=True)
def dense_to_coo3(src: DenseTensor, blocks: BlockSet) -> tuple[CooTensor, int]:
    """Fig. 8f steps 1-4: nonzero scan, prefix-summed positions, divide/mod."""
    size = src.size
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(size)
    indicator = (flat != 0.0).astype(np.int64)
    blocks.cluster.stats.compares += size
    _sums, c_scan = blocks.prefix.scan(indicator)
    positions = np.flatnonzero(indicator)
    xs, ys, zs, c_div = _linear_to_coords(positions, src.shape, blocks)
    c_write = blocks.memctrl.stream(4 * len(positions))
    out = CooTensor(src.shape, flat[positions], xs, ys, zs, dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan, c_div) + c_write


@register_conversion(Format.COO, Format.CSF, tensor=True)
def coo3_to_csf(src: CooTensor, blocks: BlockSet) -> tuple[CsfTensor, int]:
    """Fig. 8f steps 5-7: tree construction from sorted COO.

    Comparators detect root/fiber boundaries; prefix sums produce the
    pointer arrays.
    """
    nnz = src.stored
    c_read = blocks.memctrl.stream(4 * nnz)
    # Boundary detection: adjacent coordinate comparisons across two levels.
    blocks.cluster.stats.compares += 2 * max(0, nnz - 1)
    out = CsfTensor.from_coo(src)
    # Pointer arrays via prefix sums over per-root / per-fiber counts.
    _s1, c_scan1 = blocks.prefix.scan(np.diff(out.x_ptr))
    _s2, c_scan2 = blocks.prefix.scan(np.diff(out.y_ptr))
    c_write = blocks.memctrl.stream(
        len(out.x_ids) + len(out.x_ptr) + len(out.y_ids) + len(out.y_ptr) + 2 * nnz
    )
    return out, max(c_read, c_scan1 + c_scan2) + c_write


@register_conversion(Format.DENSE, Format.CSF, tensor=True)
def dense_to_csf(src: DenseTensor, blocks: BlockSet) -> tuple[CsfTensor, int]:
    """The full Fig. 8f pipeline: Dense -> COO -> CSF."""
    coo, c1 = dense_to_coo3(src, blocks)
    csf, c2 = coo3_to_csf(coo, blocks)
    return csf, c1 + c2


@register_conversion(Format.CSF, Format.COO, tensor=True)
def csf_to_coo3(src: CsfTensor, blocks: BlockSet) -> tuple[CooTensor, int]:
    """Pointer expansion down the tree."""
    nnz = len(src.values)
    c_read = blocks.memctrl.stream(
        len(src.x_ids) + len(src.x_ptr) + len(src.y_ids) + len(src.y_ptr) + 2 * nnz
    )
    out = src.to_coo()
    c_write = blocks.memctrl.stream(4 * nnz)
    return out, max(c_read, c_write)


@register_conversion(Format.COO, Format.DENSE, tensor=True)
def coo3_to_dense(src: CooTensor, blocks: BlockSet) -> tuple[DenseTensor, int]:
    """Coordinate scatter into a zero-filled buffer."""
    size = src.size
    c_read = blocks.memctrl.stream(4 * src.stored)
    c_fill = blocks.memctrl.stream(size)
    out = DenseTensor(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_fill)


@register_conversion(Format.CSF, Format.DENSE, tensor=True)
def csf_to_dense(src: CsfTensor, blocks: BlockSet) -> tuple[DenseTensor, int]:
    """CSF -> COO -> Dense composition."""
    coo, c1 = csf_to_coo3(src, blocks)
    dense, c2 = coo3_to_dense(coo, blocks)
    return dense, c1 + c2


@register_conversion(Format.DENSE, Format.ZVC, tensor=True)
def dense_to_zvc3(src: DenseTensor, blocks: BlockSet) -> tuple[ZvcTensor, int]:
    """Zero-detect mask + value compaction on the flattened tensor."""
    size = src.size
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(size)
    mask = flat != 0.0
    blocks.cluster.stats.compares += size
    _s, c_scan = blocks.prefix.scan(mask.astype(np.int64))
    c_write = blocks.memctrl.stream(int(mask.sum()))
    out = ZvcTensor(src.shape, flat[mask], mask, dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan) + c_write


@register_conversion(Format.ZVC, Format.DENSE, tensor=True)
def zvc3_to_dense(src: ZvcTensor, blocks: BlockSet) -> tuple[DenseTensor, int]:
    """Mask-driven expansion."""
    size = src.size
    c_read = blocks.memctrl.stream(src.stored)
    _s, c_scan = blocks.prefix.scan(src.mask.astype(np.int64))
    c_fill = blocks.memctrl.stream(size)
    out = DenseTensor(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan, c_fill)


@register_conversion(Format.DENSE, Format.RLC, tensor=True)
def dense_to_rlc3(src: DenseTensor, blocks: BlockSet) -> tuple[RlcTensor, int]:
    """Gap encoding of the flattened tensor."""
    size = src.size
    flat = src.values.ravel()
    c_read = blocks.memctrl.stream(size)
    blocks.cluster.stats.compares += size
    runs, levels = encode_runs(flat, DEFAULT_RUN_BITS)
    blocks.prefix.stats.int_adds += size
    c_write = blocks.memctrl.stream(2 * len(levels))
    out = RlcTensor(
        src.shape, runs, levels, dtype_bits=src.dtype_bits, run_bits=DEFAULT_RUN_BITS
    )
    return out, max(c_read, c_write)


@register_conversion(Format.RLC, Format.COO, tensor=True)
def rlc3_to_coo3(src: RlcTensor, blocks: BlockSet) -> tuple[CooTensor, int]:
    """Prefix-summed positions + divide/mod chain (Fig. 8d lifted to 3-D)."""
    entries = src.entries
    c_read = blocks.memctrl.stream(2 * entries)
    sums, c_scan = blocks.prefix.scan(src.runs + 1)
    positions = sums - 1
    xs, ys, zs, c_div = _linear_to_coords(positions, src.shape, blocks)
    keep = src.levels != 0.0
    c_write = blocks.memctrl.stream(4 * int(keep.sum()))
    out = CooTensor(
        src.shape,
        src.levels[keep],
        xs[keep],
        ys[keep],
        zs[keep],
        dtype_bits=src.dtype_bits,
    )
    return out, max(c_read, c_scan, c_div) + c_write


@register_conversion(Format.RLC, Format.DENSE, tensor=True)
def rlc3_to_dense(src: RlcTensor, blocks: BlockSet) -> tuple[DenseTensor, int]:
    """RLC decode into a zero-filled buffer."""
    entries = src.entries
    c_read = blocks.memctrl.stream(2 * entries)
    _sums, c_scan = blocks.prefix.scan(src.runs + 1)
    c_fill = blocks.memctrl.stream(src.size)
    out = DenseTensor(src.to_dense(), dtype_bits=src.dtype_bits)
    return out, max(c_read, c_scan, c_fill)


@register_conversion(Format.COO, Format.HICOO, tensor=True)
def coo3_to_hicoo(src: CooTensor, blocks: BlockSet) -> tuple[HicooTensor, int]:
    """Block bucketing: divide/mod per axis + boundary detection."""
    nnz = src.stored
    c_read = blocks.memctrl.stream(4 * nnz)
    # One divide/mod per coordinate axis.
    _bx, _ex, c1 = blocks.divmod.divmod_by(src.x_ids, 2)
    _by, _ey, c2 = blocks.divmod.divmod_by(src.y_ids, 2)
    _bz, _ez, c3 = blocks.divmod.divmod_by(src.z_ids, 2)
    blocks.cluster.stats.compares += 3 * max(0, nnz - 1)
    out = HicooTensor.from_dense(src.to_dense(), dtype_bits=src.dtype_bits)
    c_write = blocks.memctrl.stream(4 * nnz + 4 * out.nblocks)
    return out, max(c_read, c1 + c2 + c3) + c_write


@register_conversion(Format.HICOO, Format.COO, tensor=True)
def hicoo_to_coo3(src: HicooTensor, blocks: BlockSet) -> tuple[CooTensor, int]:
    """Block expansion back to absolute coordinates (multiply-add per axis)."""
    nnz = len(src.values)
    c_read = blocks.memctrl.stream(4 * nnz + 4 * src.nblocks)
    blocks.prefix.stats.int_adds += 3 * nnz
    blocks.prefix.stats.int_mults = getattr(blocks.prefix.stats, "int_mults", 0)
    blocks.prefix.stats.int_mults += 3 * nnz
    coo = CooTensor.from_dense(src.to_dense(), dtype_bits=src.dtype_bits)
    c_write = blocks.memctrl.stream(4 * nnz)
    return coo, max(c_read, c_write)


@register_conversion(Format.DENSE, Format.HICOO, tensor=True)
def dense_to_hicoo(src: DenseTensor, blocks: BlockSet) -> tuple[HicooTensor, int]:
    """Dense -> COO -> HiCOO composition."""
    coo, c1 = dense_to_coo3(src, blocks)
    out, c2 = coo3_to_hicoo(coo, blocks)
    return out, c1 + c2


@register_conversion(Format.HICOO, Format.DENSE, tensor=True)
def hicoo_to_dense(src: HicooTensor, blocks: BlockSet) -> tuple[DenseTensor, int]:
    """HiCOO -> COO -> Dense composition."""
    coo, c1 = hicoo_to_coo3(src, blocks)
    out, c2 = coo3_to_dense(coo, blocks)
    return out, c1 + c2
