"""MINT: Microarchitecture for Interchangeable compressioN formats for Tensors.

The paper's contribution 2 (Sec. V): a general-purpose hardware format
converter built from reusable building blocks (prefix sum, parallel
divide/mod, sorting network, cluster counter, comparators, memory
controller) instead of one dedicated converter per format pair.

* :mod:`repro.mint.blocks` — the building blocks, functional + cost-counted;
* :mod:`repro.mint.conversions` — the Fig. 8 conversions (CSR->CSC,
  RLC->COO, CSR->BSR, Dense->CSF) and the generalizations, each verified
  element-exact against the software oracle;
* :mod:`repro.mint.graph` — the pluggable conversion-graph registry:
  datapaths self-register via :func:`~repro.mint.graph.register_conversion`
  and routing is cost-weighted Dijkstra over the registered edges;
* :mod:`repro.mint.engine` — graph-routed dispatch + cost reports;
* :mod:`repro.mint.designs` — MINT_b / MINT_m / MINT_mr area & power;
* :mod:`repro.mint.cost` — closed-form conversion cost estimates for SAGE,
  memoized by :class:`~repro.mint.cost.PathPlanner`.
"""

from repro.mint.blocks import (
    ClusterCounter,
    MemoryController,
    ParallelDivMod,
    PrefixSumUnit,
    SortingNetwork,
)
from repro.mint.cost import (
    ConversionCost,
    MintThroughput,
    PathPlanner,
    estimate_conversion_cost,
    shared_planner,
)
from repro.mint.designs import MintDesign, mint_area, mint_power
from repro.mint.engine import ConversionReport, MintEngine, find_path
from repro.mint.graph import (
    ConversionGraph,
    Datapath,
    HopStats,
    conversion_graph,
    register_conversion,
)

__all__ = [
    "ClusterCounter",
    "ConversionCost",
    "ConversionGraph",
    "ConversionReport",
    "Datapath",
    "HopStats",
    "MemoryController",
    "MintDesign",
    "MintEngine",
    "MintThroughput",
    "ParallelDivMod",
    "PathPlanner",
    "PrefixSumUnit",
    "SortingNetwork",
    "conversion_graph",
    "estimate_conversion_cost",
    "find_path",
    "mint_area",
    "mint_power",
    "register_conversion",
    "shared_planner",
]
