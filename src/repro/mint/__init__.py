"""MINT: Microarchitecture for Interchangeable compressioN formats for Tensors.

The paper's contribution 2 (Sec. V): a general-purpose hardware format
converter built from reusable building blocks (prefix sum, parallel
divide/mod, sorting network, cluster counter, comparators, memory
controller) instead of one dedicated converter per format pair.

* :mod:`repro.mint.blocks` — the building blocks, functional + cost-counted;
* :mod:`repro.mint.conversions` — the Fig. 8 conversions (CSR->CSC,
  RLC->COO, CSR->BSR, Dense->CSF) and the generalizations, each verified
  element-exact against the software oracle;
* :mod:`repro.mint.engine` — dispatch + COO-hub composition + cost reports;
* :mod:`repro.mint.designs` — MINT_b / MINT_m / MINT_mr area & power;
* :mod:`repro.mint.cost` — closed-form conversion cost estimates for SAGE.
"""

from repro.mint.blocks import (
    ClusterCounter,
    MemoryController,
    ParallelDivMod,
    PrefixSumUnit,
    SortingNetwork,
)
from repro.mint.cost import ConversionCost, estimate_conversion_cost
from repro.mint.designs import MintDesign, mint_area, mint_power
from repro.mint.engine import ConversionReport, MintEngine

__all__ = [
    "ClusterCounter",
    "ConversionCost",
    "ConversionReport",
    "MemoryController",
    "MintDesign",
    "MintEngine",
    "ParallelDivMod",
    "PrefixSumUnit",
    "SortingNetwork",
    "estimate_conversion_cost",
    "mint_area",
    "mint_power",
]
