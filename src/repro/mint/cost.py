"""Closed-form conversion cost estimates and the memoized path planner.

SAGE must price every (MCF, ACF) candidate without materializing the
operands (Sec. VI: "to model the conversion cost, we evaluate the building
blocks necessary for each conversion scenario along with their relative
execution cycles and power consumption").  This module prices the routes
the :mod:`repro.mint.graph` planner chooses, using the same pipelined-pass
cycle model the graph's per-hop estimators implement, plus the energy
accounting the graph does not carry.

Throughput is bit-granular: MINT's memory controller ingests at the bus
width (512 bits/cycle), so a conversion whose processing stages keep pace
is *fully hidden* behind the DRAM transfer of the same operand ("MINT is
pipelined to start conversion while streaming in data from memory",
Sec. V-B).  The visible residuals are the divide/mod bank (8 results/cycle,
needed only when absolute coordinates must be produced) and the prefix-sum
unit (32/cycle).  A conversion's *output* stream is not charged on the
final hop: it feeds the accelerator's flexible NoC directly and is already
accounted as the compute stage's streaming cycles; a Dense endpoint inside
MINT is therefore costed as nonzeros + occupancy sideband (ZVC-like), never
as materialized zeros.

:class:`PathPlanner` layers two LRU caches under the estimator so SAGE's
exhaustive combo search stops recomputing identical conversion costs:

* a **route cache** keyed on ``(src, dst, tensor, size-class)`` — operands
  in the same power-of-two size/nnz bucket share a planned route, and
* a **cost cache** keyed on the exact summary statistics, so repeated
  pricing of the same operand (every MCF/ACF cross-product revisits each
  pair ~a dozen times) is a dictionary hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.formats.registry import Format
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.mint.graph import (
    DEFAULT_THROUGHPUT,
    Datapath,
    HopStats,
    MintThroughput,
    _footprint_bits,
    _needs_divmod,
    conversion_graph,
    estimate_hop_cycles,
)

__all__ = [
    "CacheInfo",
    "ConversionCost",
    "MintThroughput",
    "PathPlanner",
    "estimate_conversion_cost",
    "shared_planner",
]


@dataclass(frozen=True)
class ConversionCost:
    """Estimated cost of one conversion for the SAGE cost model."""

    cycles: int
    energy_j: float
    seconds: float

    @staticmethod
    def zero() -> "ConversionCost":
        """No-conversion (MCF == ACF) cost."""
        return ConversionCost(0, 0.0, 0.0)

    def __add__(self, other: "ConversionCost") -> "ConversionCost":
        return ConversionCost(
            self.cycles + other.cycles,
            self.energy_j + other.energy_j,
            self.seconds + other.seconds,
        )


def _hop_cost(
    dp: Datapath,
    stats: HopStats,
    tp: MintThroughput,
    energy: EnergyModel,
    *,
    final_hop: bool,
) -> ConversionCost:
    """Price one routed hop: the datapath's cycle estimate + energy model."""
    src, dst = dp.source, dp.target
    in_bits = _footprint_bits(src, stats)
    out_bits = _footprint_bits(dst, stats)
    div_ops = float(stats.nnz) if _needs_divmod(src, dst) else 0.0
    scan_ops = (
        float(stats.size)
        if src is Format.DENSE
        else float(max(stats.nnz, stats.major_dim))
    )
    compares = float(stats.size) if src is Format.DENSE else float(stats.nnz)
    if tp is DEFAULT_THROUGHPUT:
        cycles = int(dp.cycles(stats, final_hop=final_hop))
    else:
        # A non-default throughput overrides whatever estimator the edge
        # registered (custom estimators close over the default sizing).
        cycles = estimate_hop_cycles(
            src, dst, stats, final_hop=final_hop, throughput=tp
        )
    energy_j = (
        (in_bits + out_bits) * energy.sram_global_bit
        + div_ops * (energy.div_int32 + energy.mod_int32)
        + scan_ops * energy.add_int32
        + compares * energy.compare
    )
    return ConversionCost(cycles, energy_j, cycles / tp.clock_hz)


def _price_path(
    path: tuple[Datapath, ...],
    stats: HopStats,
    tp: MintThroughput,
    energy: EnergyModel,
) -> ConversionCost:
    total = ConversionCost.zero()
    for idx, dp in enumerate(path):
        total = total + _hop_cost(
            dp, stats, tp, energy, final_hop=idx == len(path) - 1
        )
    return total


# ---------------------------------------------------------------- planner
@dataclass(frozen=True)
class CacheInfo:
    """Hit/size counters of one planner cache (lru_cache-compatible)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class _LruDict:
    """A tiny ordered-dict LRU with hit accounting and bulk seed/export."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key, compute: Callable[[], object]):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            return value
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def seed(self, entries: dict) -> None:
        for key, value in entries.items():
            self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def export(self) -> dict:
        return dict(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, self.maxsize, len(self._data))


def _size_class(value: int) -> int:
    """Power-of-two bucket: operands within 2x share a planned route."""
    return max(1, int(value)).bit_length()


class PathPlanner:
    """Memoized conversion route + cost planner over the conversion graph.

    One planner instance serves one (throughput, energy) configuration;
    :func:`shared_planner` returns the process-wide default every SAGE
    search shares.
    """

    def __init__(
        self,
        *,
        throughput: MintThroughput | None = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        route_cache: int = 4096,
        cost_cache: int = 65536,
    ) -> None:
        self.throughput = throughput or DEFAULT_THROUGHPUT
        self.energy = energy
        self._routes = _LruDict(route_cache)
        self._costs = _LruDict(cost_cache)

    # ------------------------------------------------------------- routes
    def route(
        self,
        src: Format,
        dst: Format,
        *,
        tensor: bool = False,
        size: int,
        nnz: int,
        major_dim: int,
        dtype_bits: int = 32,
    ) -> tuple[Datapath, ...]:
        """The planned hop sequence, memoized per size-class."""
        if src is dst:
            return ()
        key = (
            src,
            dst,
            tensor,
            _size_class(size),
            _size_class(nnz),
            _size_class(major_dim),
            dtype_bits,
        )
        stats = HopStats(
            size=size,
            nnz=nnz,
            major_dim=major_dim,
            dtype_bits=dtype_bits,
            tensor=tensor,
        )
        graph = conversion_graph(tensor=tensor)
        return self._routes.get_or_compute(
            key,
            lambda: graph.find_path(
                src, dst, stats, throughput=self.throughput
            ),
        )

    # -------------------------------------------------------------- costs
    def estimate(
        self,
        src: Format,
        dst: Format,
        *,
        size: int,
        nnz: int,
        major_dim: int,
        dtype_bits: int = 32,
        tensor: bool = False,
    ) -> ConversionCost:
        """Exact-statistics conversion cost along the memoized route."""
        if src is dst:
            return ConversionCost.zero()
        key = (src, dst, tensor, size, nnz, major_dim, dtype_bits)

        def compute() -> ConversionCost:
            path = self.route(
                src,
                dst,
                tensor=tensor,
                size=size,
                nnz=nnz,
                major_dim=major_dim,
                dtype_bits=dtype_bits,
            )
            stats = HopStats(
                size=size,
                nnz=nnz,
                major_dim=major_dim,
                dtype_bits=dtype_bits,
                tensor=tensor,
            )
            return _price_path(path, stats, self.throughput, self.energy)

        return self._costs.get_or_compute(key, compute)

    # ------------------------------------------------------------ plumbing
    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss counters of the route and cost caches."""
        return {"route": self._routes.info(), "cost": self._costs.info()}

    def cache_clear(self) -> None:
        """Drop both caches (used by cold-vs-warm benchmarks)."""
        self._routes.clear()
        self._costs.clear()

    def export_routes(self) -> dict:
        """Snapshot the route cache keyed by pair/size-class.

        Routes are exported as ``(source, target)`` pairs — picklable — so
        :meth:`Sage.predict_many` can seed worker processes.
        """
        return {
            key: tuple(dp.pair for dp in path)
            for key, path in self._routes.export().items()
        }

    def export_snapshot(self) -> dict:
        """Bundle both caches for warm-starting another process.

        The serve layer ships this to each shard worker so a freshly forked
        shard starts with every route *and* exact-stats cost the parent has
        already paid for.  Values are plain picklable tuples/dataclasses;
        pair with :meth:`seed_snapshot` on the receiving side.
        """
        return {
            "routes": self.export_routes(),
            "costs": self._costs.export(),
        }

    def seed_snapshot(self, snapshot: dict) -> None:
        """Adopt a snapshot produced by :meth:`export_snapshot`."""
        self.seed_routes(snapshot.get("routes", {}))
        self._costs.seed(snapshot.get("costs", {}))

    def seed_routes(self, routes: dict) -> None:
        """Adopt a route snapshot produced by :meth:`export_routes`."""
        resolved = {}
        for key, pairs in routes.items():
            tensor = bool(key[2])
            graph = conversion_graph(tensor=tensor)
            path = []
            for s, t in pairs:
                dp = graph.direct(s, t)
                if dp is None:  # an edge vanished: skip this snapshot entry
                    path = None
                    break
                path.append(dp)
            if path is not None:
                resolved[key] = tuple(path)
        self._routes.seed(resolved)


_SHARED_PLANNER = PathPlanner()


def shared_planner() -> PathPlanner:
    """The process-wide planner SAGE's cost model routes through."""
    return _SHARED_PLANNER


def estimate_conversion_cost(
    src: Format,
    dst: Format,
    *,
    size: int,
    nnz: int,
    major_dim: int,
    dtype_bits: int = 32,
    tensor: bool = False,
    throughput: MintThroughput | None = None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> ConversionCost:
    """Estimate MINT's cost to convert src -> dst from summary statistics.

    Default-configuration queries go through the shared memoized planner;
    custom throughput/energy models are priced uncached.

    Parameters
    ----------
    size:
        Logical element count (M*K or X*Y*Z).
    nnz:
        Nonzero count.
    major_dim:
        Pointer-array length driver (rows for CSR, columns for CSC; use the
        larger dimension when unknown).
    """
    if src is dst:
        return ConversionCost.zero()
    if (throughput is None or throughput is DEFAULT_THROUGHPUT) and (
        energy is DEFAULT_ENERGY
    ):
        return _SHARED_PLANNER.estimate(
            src,
            dst,
            size=size,
            nnz=nnz,
            major_dim=major_dim,
            dtype_bits=dtype_bits,
            tensor=tensor,
        )
    tp = throughput or DEFAULT_THROUGHPUT
    stats = HopStats(
        size=size, nnz=nnz, major_dim=major_dim, dtype_bits=dtype_bits,
        tensor=tensor,
    )
    path = conversion_graph(tensor=tensor).find_path(
        src, dst, stats, throughput=tp
    )
    return _price_path(path, stats, tp, energy)
