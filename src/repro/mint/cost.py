"""Closed-form conversion cost estimates for SAGE.

SAGE must price every (MCF, ACF) candidate without materializing the
operands (Sec. VI: "to model the conversion cost, we evaluate the building
blocks necessary for each conversion scenario along with their relative
execution cycles and power consumption").  This module mirrors the engine's
path resolution and pipelined-pass cycle model using only summary
statistics, assuming uniform-random placement for RLC entry counts.

Throughput is bit-granular: MINT's memory controller ingests at the bus
width (512 bits/cycle), so a conversion whose processing stages keep pace
is *fully hidden* behind the DRAM transfer of the same operand ("MINT is
pipelined to start conversion while streaming in data from memory",
Sec. V-B).  The visible residuals are the divide/mod bank (8 results/cycle,
needed only when absolute coordinates must be produced) and the prefix-sum
unit (32/cycle).  A conversion's *output* stream is not charged on the
final hop: it feeds the accelerator's flexible NoC directly and is already
accounted as the compute stage's streaming cycles; a Dense endpoint inside
MINT is therefore costed as nonzeros + occupancy sideband (ZVC-like), never
as materialized zeros.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compactness import storage_bits
from repro.errors import ConversionError
from repro.formats.registry import Format
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.mint.engine import find_path
from repro.util.bits import ceil_div


@dataclass(frozen=True)
class MintThroughput:
    """Throughput of the merged MINT instance (Sec. VII-B sizing)."""

    stream_bits: int = 512  # memory-controller ingest, matched to the bus
    divmod_units: int = 8  # "we limit the number of parallel mod and divider
    #                         units to eight" (Sec. VII-B)
    scan_width: int = 32  # "highly parallel prefix sum of 32 inputs"
    clock_hz: float = 1.0e9


@dataclass(frozen=True)
class ConversionCost:
    """Estimated cost of one conversion for the SAGE cost model."""

    cycles: int
    energy_j: float
    seconds: float

    @staticmethod
    def zero() -> "ConversionCost":
        """No-conversion (MCF == ACF) cost."""
        return ConversionCost(0, 0.0, 0.0)

    def __add__(self, other: "ConversionCost") -> "ConversionCost":
        return ConversionCost(
            self.cycles + other.cycles,
            self.energy_j + other.energy_j,
            self.seconds + other.seconds,
        )


def _dims_for(size: int, major_dim: int, *, tensor: bool) -> tuple[int, ...]:
    """Reconstruct a dims tuple for the storage model from (size, major)."""
    major_dim = max(1, min(major_dim, size))
    minor = max(1, size // major_dim)
    if not tensor:
        return (major_dim, minor)
    # Split the minor extent evenly for the two remaining modes.
    mid = max(1, int(minor ** 0.5))
    return (major_dim, mid, max(1, minor // mid))


def _footprint_bits(
    fmt: Format, size: int, nnz: int, major_dim: int, dtype_bits: int,
    *, tensor: bool,
) -> float:
    """Bits of an encoding as it transits MINT.

    Dense transits as nonzeros + occupancy sideband (the flexible-NoC
    representation, ZVC-equivalent) — MINT never materializes zeros.
    """
    dims = _dims_for(size, major_dim, tensor=tensor)
    transit_fmt = Format.ZVC if fmt is Format.DENSE else fmt
    return float(storage_bits(transit_fmt, dims, nnz, dtype_bits))


def _needs_divmod(src: Format, dst: Format) -> bool:
    """Does the hop compute absolute coordinates with the divide/mod bank?"""
    return dst in (Format.COO, Format.CSF, Format.HICOO, Format.BSR)


def _hop_cost(
    src: Format,
    dst: Format,
    size: int,
    nnz: int,
    major_dim: int,
    dtype_bits: int,
    tp: MintThroughput,
    energy: EnergyModel,
    *,
    tensor: bool,
    final_hop: bool,
) -> ConversionCost:
    in_bits = _footprint_bits(src, size, nnz, major_dim, dtype_bits,
                              tensor=tensor)
    out_bits = _footprint_bits(dst, size, nnz, major_dim, dtype_bits,
                               tensor=tensor)
    div_ops = float(nnz) if _needs_divmod(src, dst) else 0.0
    scan_ops = float(size) if src is Format.DENSE else float(max(nnz, major_dim))
    compares = float(size) if src is Format.DENSE else float(nnz)
    # Pipelined pass: the slowest stage sets the rate.  Pointer-to-pointer
    # transposes (CSR<->CSC) take a second full pass (histogram, then
    # scatter, Fig. 8c).
    passes = 2.0 if (
        src in (Format.CSR, Format.CSC) and dst in (Format.CSR, Format.CSC)
    ) else 1.0
    stage_cycles = max(
        passes * in_bits / tp.stream_bits,
        div_ops / tp.divmod_units,
        scan_ops / tp.scan_width,
    )
    # Intermediate hops materialize their result in the scratchpad; the
    # final hop's output feeds the accelerator directly (charged there).
    if not final_hop:
        stage_cycles += out_bits / tp.stream_bits
    cycles = max(1, int(stage_cycles) + 1)
    energy_j = (
        (in_bits + out_bits) * energy.sram_global_bit
        + div_ops * (energy.div_int32 + energy.mod_int32)
        + scan_ops * energy.add_int32
        + compares * energy.compare
    )
    return ConversionCost(cycles, energy_j, cycles / tp.clock_hz)


def estimate_conversion_cost(
    src: Format,
    dst: Format,
    *,
    size: int,
    nnz: int,
    major_dim: int,
    dtype_bits: int = 32,
    tensor: bool = False,
    throughput: MintThroughput | None = None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> ConversionCost:
    """Estimate MINT's cost to convert src -> dst from summary statistics.

    Parameters
    ----------
    size:
        Logical element count (M*K or X*Y*Z).
    nnz:
        Nonzero count.
    major_dim:
        Pointer-array length driver (rows for CSR, columns for CSC; use the
        larger dimension when unknown).
    """
    tp = throughput or MintThroughput()
    if src is dst:
        return ConversionCost.zero()
    total = ConversionCost.zero()
    hops = find_path(src, dst, tensor=tensor)
    for idx, (hop_src, hop_dst) in enumerate(hops):
        total = total + _hop_cost(
            hop_src, hop_dst, size, nnz, major_dim, dtype_bits, tp, energy,
            tensor=tensor, final_hop=idx == len(hops) - 1,
        )
    return total
