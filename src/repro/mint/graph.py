"""Pluggable conversion-graph registry with cost-aware path planning.

The MINT engine used to hard-code its dispatch in two module dicts plus a
fixed "via COO, else via Dense" hub heuristic.  This module replaces that
with a **registry**: every conversion routine in
:mod:`repro.mint.conversions` / :mod:`repro.mint.tensor_conversions`
self-registers through the :func:`register_conversion` decorator, carrying
its metadata — source/target :class:`~repro.formats.registry.Format`, the
keyword arguments it accepts, and a per-hop cycle estimator.  Path
resolution is then a Dijkstra shortest-path search over the registered
datapaths, weighted by estimated cycles for the operand at hand
(size/nnz-aware), so adding a format is one decorated function and routing
automatically exploits it.

Because the legacy hub route is itself a path in the same graph, the
Dijkstra route is **never costlier than the old heuristic's** under the
same estimator — the property the planner regression tests pin.

Cycle estimation mirrors the pipelined-pass model of
:mod:`repro.mint.cost`: a hop's visible cycles are the slowest of its
stream-in, divide/mod and prefix-sum stages; intermediate hops additionally
materialize their output in the scratchpad, while the final hop's output
feeds the accelerator directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterator

from repro.analysis.compactness import storage_bits
from repro.errors import ConversionError
from repro.formats.registry import Format

#: A conversion routine: ``fn(src_obj, blocks, **kwargs) -> (dst_obj, cycles)``.
ConversionFn = Callable[..., tuple[Any, int]]


@dataclass(frozen=True)
class MintThroughput:
    """Throughput of the merged MINT instance (Sec. VII-B sizing)."""

    stream_bits: int = 512  # memory-controller ingest, matched to the bus
    divmod_units: int = 8  # "we limit the number of parallel mod and divider
    #                         units to eight" (Sec. VII-B)
    scan_width: int = 32  # "highly parallel prefix sum of 32 inputs"
    clock_hz: float = 1.0e9


DEFAULT_THROUGHPUT = MintThroughput()


@dataclass(frozen=True)
class HopStats:
    """Operand summary statistics a hop estimator prices against."""

    size: int  # logical element count (M*K or X*Y*Z)
    nnz: int  # nonzero count
    major_dim: int  # pointer-array length driver (rows for CSR, ...)
    dtype_bits: int = 32
    tensor: bool = False

    @staticmethod
    def typical(*, tensor: bool = False) -> "HopStats":
        """Representative stats when the caller has no operand in hand.

        A 1K x 1K (or 128^3-ish) operand at ~1% density: dense-vs-sparse
        routing tradeoffs are already visible at this size-class.
        """
        size = 1 << 20
        return HopStats(
            size=size, nnz=size // 100, major_dim=1 << 10, tensor=tensor
        )

    @staticmethod
    def of(obj: Any) -> "HopStats":
        """Stats of a materialized format object (matrix or tensor)."""
        from repro.formats.base import TensorFormat

        tensor = isinstance(obj, TensorFormat)
        size = 1
        for d in obj.shape:
            size *= int(d)
        return HopStats(
            size=size,
            nnz=max(1, int(obj.nnz)),
            major_dim=max(1, int(obj.shape[0])),
            dtype_bits=obj.dtype_bits,
            tensor=tensor,
        )


#: A hop estimator prices one registered datapath for given operand stats;
#: ``final_hop`` hops skip the scratchpad write-back charge.
HopEstimator = Callable[..., float]


def _dims_for(size: int, major_dim: int, *, tensor: bool) -> tuple[int, ...]:
    """Reconstruct a dims tuple for the storage model from (size, major)."""
    major_dim = max(1, min(major_dim, size))
    minor = max(1, size // major_dim)
    if not tensor:
        return (major_dim, minor)
    # Split the minor extent evenly for the two remaining modes.
    mid = max(1, int(minor ** 0.5))
    return (major_dim, mid, max(1, minor // mid))


def _footprint_bits(fmt: Format, stats: HopStats) -> float:
    """Bits of an encoding as it transits MINT.

    Dense transits as nonzeros + occupancy sideband (the flexible-NoC
    representation, ZVC-equivalent) — MINT never materializes zeros.
    """
    dims = _dims_for(stats.size, stats.major_dim, tensor=stats.tensor)
    transit_fmt = Format.ZVC if fmt is Format.DENSE else fmt
    return float(
        storage_bits(transit_fmt, dims, stats.nnz, stats.dtype_bits)
    )


def _needs_divmod(src: Format, dst: Format) -> bool:
    """Does the hop compute absolute coordinates with the divide/mod bank?"""
    return dst in (Format.COO, Format.CSF, Format.HICOO, Format.BSR)


def estimate_hop_cycles(
    src: Format,
    dst: Format,
    stats: HopStats,
    *,
    final_hop: bool = True,
    throughput: MintThroughput = DEFAULT_THROUGHPUT,
) -> int:
    """Estimated visible cycles of one registered hop (pipelined passes).

    This is the generic estimator attached to every datapath that does not
    supply its own: the slowest of the stream-in / divide-mod / prefix-sum
    stages bounds the pass, pointer-to-pointer transposes (CSR<->CSC) take
    a second full pass, and non-final hops add the scratchpad write-back.
    """
    tp = throughput
    in_bits = _footprint_bits(src, stats)
    out_bits = _footprint_bits(dst, stats)
    div_ops = float(stats.nnz) if _needs_divmod(src, dst) else 0.0
    scan_ops = (
        float(stats.size)
        if src is Format.DENSE
        else float(max(stats.nnz, stats.major_dim))
    )
    passes = 2.0 if (
        src in (Format.CSR, Format.CSC) and dst in (Format.CSR, Format.CSC)
    ) else 1.0
    stage_cycles = max(
        passes * in_bits / tp.stream_bits,
        div_ops / tp.divmod_units,
        scan_ops / tp.scan_width,
    )
    if not final_hop:
        stage_cycles += out_bits / tp.stream_bits
    return max(1, int(stage_cycles) + 1)


@dataclass(frozen=True)
class Datapath:
    """One registered conversion edge and its metadata."""

    source: Format
    target: Format
    fn: ConversionFn
    accepts: tuple[str, ...] = ()  # kwarg names the routine understands
    estimator: HopEstimator | None = None
    tensor: bool = False

    @property
    def name(self) -> str:
        """The implementing routine's name (used in conversion reports)."""
        return self.fn.__name__

    @property
    def pair(self) -> tuple[Format, Format]:
        """The (source, target) key of this edge."""
        return (self.source, self.target)

    def cycles(
        self,
        stats: HopStats,
        *,
        final_hop: bool = True,
        throughput: MintThroughput | None = None,
    ) -> float:
        """Estimated cycles of this hop for *stats*.

        A non-default *throughput* overrides the registered estimator
        (which closes over the default MINT sizing), so routing and
        pricing agree under custom hardware configurations.
        """
        if throughput is not None and throughput is not DEFAULT_THROUGHPUT:
            return float(
                estimate_hop_cycles(
                    self.source, self.target, stats,
                    final_hop=final_hop, throughput=throughput,
                )
            )
        est = self.estimator or partial(
            estimate_hop_cycles, self.source, self.target
        )
        return float(est(stats, final_hop=final_hop))

    def __call__(self, obj: Any, blocks: Any, **kwargs: Any) -> tuple[Any, int]:
        """Execute the datapath, forwarding only the kwargs it accepts."""
        usable = {k: v for k, v in kwargs.items() if k in self.accepts}
        return self.fn(obj, blocks, **usable)


class ConversionGraph:
    """Registry of datapaths + cost-weighted shortest-path routing.

    One instance exists per operand arity (:data:`MATRIX_GRAPH`,
    :data:`TENSOR_GRAPH`).  Registration is open: downstream packages add a
    format by decorating its conversion routines — no engine edits.
    """

    def __init__(self, *, tensor: bool = False) -> None:
        self.tensor = tensor
        self._edges: dict[tuple[Format, Format], Datapath] = {}
        self._out: dict[Format, list[Datapath]] = {}

    # ------------------------------------------------------------ registry
    def register(self, dp: Datapath) -> Datapath:
        """Add (or replace) the datapath for ``dp.pair``."""
        old = self._edges.get(dp.pair)
        if old is not None:
            self._out[dp.source].remove(old)
        self._edges[dp.pair] = dp
        self._out.setdefault(dp.source, []).append(dp)
        return dp

    def direct(self, source: Format, target: Format) -> Datapath | None:
        """The registered single-hop datapath, if any."""
        return self._edges.get((source, target))

    def edges_from(self, source: Format) -> tuple[Datapath, ...]:
        """All registered datapaths leaving *source*."""
        return tuple(self._out.get(source, ()))

    def formats(self) -> tuple[Format, ...]:
        """Every format appearing as an edge endpoint, stably ordered."""
        seen: dict[Format, None] = {}
        for s, t in self._edges:
            seen.setdefault(s)
            seen.setdefault(t)
        return tuple(seen)

    def __iter__(self) -> Iterator[Datapath]:
        return iter(self._edges.values())

    def __len__(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------- routing
    def find_path(
        self,
        source: Format,
        target: Format,
        stats: HopStats | None = None,
        *,
        throughput: MintThroughput | None = None,
    ) -> tuple[Datapath, ...]:
        """Cheapest hop sequence realizing source -> target (Dijkstra).

        Edge weights are each datapath's estimated cycles for *stats*
        (:meth:`Datapath.cycles`); the final hop is priced without the
        scratchpad write-back, exactly as the engine executes it.  Raises
        :class:`~repro.errors.ConversionError` when *target* is unreachable.
        """
        if source is target:
            return ()
        stats = stats or HopStats.typical(tensor=self.tensor)
        # Dijkstra with every hop charged as intermediate; dst is never
        # expanded, so dist[u] is the cheapest dst-free prefix ending at u.
        dist: dict[Format, float] = {source: 0.0}
        prev: dict[Format, Datapath] = {}
        pq: list[tuple[float, int, str, Format]] = [(0.0, 0, source.value, source)]
        settled: set[Format] = set()
        while pq:
            d, hops, _, node = heapq.heappop(pq)
            if node in settled or node is target:
                continue
            settled.add(node)
            for dp in self._out.get(node, ()):
                nd = d + dp.cycles(stats, final_hop=False, throughput=throughput)
                if nd < dist.get(dp.target, float("inf")):
                    dist[dp.target] = nd
                    prev[dp.target] = dp
                    heapq.heappush(
                        pq, (nd, hops + 1, dp.target.value, dp.target)
                    )
        # The true path cost discounts the last hop's write-back: pick the
        # final edge minimizing prefix + final-priced hop.
        best: tuple[float, Datapath] | None = None
        for dp in self._edges.values():
            if dp.target is not target or dp.source not in dist:
                continue
            total = dist[dp.source] + dp.cycles(
                stats, final_hop=True, throughput=throughput
            )
            if best is None or total < best[0]:
                best = (total, dp)
        if best is None:
            raise ConversionError(
                f"no MINT datapath from {source} to {target} "
                f"({'tensor' if self.tensor else 'matrix'})"
            )
        path = [best[1]]
        node = best[1].source
        while node is not source:
            dp = prev[node]
            path.append(dp)
            node = dp.source
        return tuple(reversed(path))

    def hub_heuristic_path(
        self, source: Format, target: Format
    ) -> tuple[Datapath, ...]:
        """The legacy resolution order: identity, direct, via COO, via Dense.

        Kept as the regression baseline the Dijkstra route must never
        exceed in estimated cycles (and for A/B experiments).
        """
        if source is target:
            return ()
        direct = self.direct(source, target)
        if direct is not None:
            return (direct,)
        for hub in (Format.COO, Format.DENSE):
            if hub in (source, target):
                continue
            first = self.direct(source, hub)
            second = self.direct(hub, target)
            if first is not None and second is not None:
                return (first, second)
        raise ConversionError(
            f"no MINT datapath from {source} to {target} "
            f"({'tensor' if self.tensor else 'matrix'})"
        )

    def path_cycles(
        self,
        path: tuple[Datapath, ...],
        stats: HopStats | None = None,
        *,
        throughput: MintThroughput | None = None,
    ) -> float:
        """Total estimated cycles of *path* (final hop priced as final)."""
        stats = stats or HopStats.typical(tensor=self.tensor)
        total = 0.0
        for idx, dp in enumerate(path):
            total += dp.cycles(
                stats, final_hop=idx == len(path) - 1, throughput=throughput
            )
        return total

    def supported_pairs(self) -> list[tuple[Format, Format]]:
        """All (source, target) pairs with a realizable route."""
        from repro.formats.registry import MATRIX_FORMATS, TENSOR_FORMATS

        catalog = TENSOR_FORMATS if self.tensor else MATRIX_FORMATS
        pairs = []
        for s in catalog:
            for t in catalog:
                try:
                    self.find_path(s, t)
                except ConversionError:
                    continue
                pairs.append((s, t))
        return pairs


#: The process-wide registries the decorators populate.
MATRIX_GRAPH = ConversionGraph(tensor=False)
TENSOR_GRAPH = ConversionGraph(tensor=True)

_DATAPATHS_LOADED = False


def _ensure_datapaths_loaded() -> None:
    """Import the conversion modules so their decorators have run.

    The flag flips only *after* both imports complete: flipping it first
    let a concurrent thread (e.g. an in-process serve worker answering
    the process's very first prediction) observe an empty graph and fail
    with "no MINT datapath".  Duplicate imports are harmless no-ops and
    the interpreter's import lock serializes racing first importers.
    """
    global _DATAPATHS_LOADED
    if not _DATAPATHS_LOADED:
        import repro.mint.conversions  # noqa: F401  (registers matrix edges)
        import repro.mint.tensor_conversions  # noqa: F401  (tensor edges)
        _DATAPATHS_LOADED = True


def conversion_graph(*, tensor: bool = False) -> ConversionGraph:
    """The populated registry for the requested operand arity."""
    _ensure_datapaths_loaded()
    return TENSOR_GRAPH if tensor else MATRIX_GRAPH


def register_conversion(
    source: Format,
    target: Format,
    *,
    tensor: bool = False,
    accepts: tuple[str, ...] = (),
    estimator: HopEstimator | None = None,
    graph: ConversionGraph | None = None,
) -> Callable[[ConversionFn], ConversionFn]:
    """Decorator: self-register a conversion routine as a graph datapath.

    Parameters
    ----------
    accepts:
        Keyword arguments the routine understands (e.g. ``("block_shape",)``
        for BSR encoders); the engine forwards only these.
    estimator:
        Per-hop cycle estimator ``est(stats, *, final_hop) -> float``;
        defaults to :func:`estimate_hop_cycles` specialized to the pair.
    """

    def deco(fn: ConversionFn) -> ConversionFn:
        # `is not None`, not truthiness: an empty target graph is falsy.
        g = graph if graph is not None else (
            TENSOR_GRAPH if tensor else MATRIX_GRAPH
        )
        est = estimator or partial(estimate_hop_cycles, source, target)
        g.register(
            Datapath(
                source=source,
                target=target,
                fn=fn,
                accepts=tuple(accepts),
                estimator=est,
                tensor=tensor,
            )
        )
        return fn

    return deco
