"""MINT conversion engine: dispatch, composition and cost reporting.

Given ``m`` MCFs and ``a`` ACFs, MINT provides all ``m x a`` conversions
(Sec. V) from one merged block complement.  Pairs without a dedicated
datapath are composed through COO — "COO enables fast translation to other
formats" (Sec. V-B) — or, failing that, through Dense; the report records
the path taken and sums its cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConversionError
from repro.formats.base import MatrixFormat, TensorFormat
from repro.formats.registry import Format
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.mint import conversions as mx
from repro.mint import tensor_conversions as tx
from repro.mint.blockset import BlockSet

_MatrixFn = Callable[..., tuple[MatrixFormat, int]]
_TensorFn = Callable[..., tuple[TensorFormat, int]]

#: Direct matrix conversion datapaths.
_MATRIX_DIRECT: dict[tuple[Format, Format], _MatrixFn] = {
    (Format.CSR, Format.CSC): mx.csr_to_csc,
    (Format.CSC, Format.CSR): mx.csc_to_csr,
    (Format.RLC, Format.COO): mx.rlc_to_coo,
    (Format.RLC, Format.DENSE): mx.rlc_to_dense,
    (Format.CSR, Format.BSR): mx.csr_to_bsr,
    (Format.DENSE, Format.COO): mx.dense_to_coo,
    (Format.DENSE, Format.CSR): mx.dense_to_csr,
    (Format.DENSE, Format.CSC): mx.dense_to_csc,
    (Format.DENSE, Format.ZVC): mx.dense_to_zvc,
    (Format.DENSE, Format.RLC): mx.dense_to_rlc,
    (Format.DENSE, Format.BSR): mx.dense_to_bsr,
    (Format.DENSE, Format.DIA): mx.dense_to_dia,
    (Format.COO, Format.CSR): mx.coo_to_csr,
    (Format.COO, Format.CSC): mx.coo_to_csc,
    (Format.COO, Format.DENSE): mx.coo_to_dense,
    (Format.CSR, Format.COO): mx.csr_to_coo,
    (Format.CSR, Format.DENSE): mx.csr_to_dense,
    (Format.CSC, Format.COO): mx.csc_to_coo,
    (Format.CSC, Format.DENSE): mx.csc_to_dense,
    (Format.ZVC, Format.DENSE): mx.zvc_to_dense,
    (Format.BSR, Format.DENSE): mx.bsr_to_dense,
    (Format.DIA, Format.DENSE): mx.dia_to_dense,
    (Format.DENSE, Format.ELL): mx.dense_to_ell,
    (Format.ELL, Format.DENSE): mx.ell_to_dense,
    (Format.CSR, Format.ELL): mx.csr_to_ell,
}

#: Direct 3-D tensor conversion datapaths.
_TENSOR_DIRECT: dict[tuple[Format, Format], _TensorFn] = {
    (Format.DENSE, Format.COO): tx.dense_to_coo3,
    (Format.DENSE, Format.CSF): tx.dense_to_csf,
    (Format.DENSE, Format.ZVC): tx.dense_to_zvc3,
    (Format.DENSE, Format.RLC): tx.dense_to_rlc3,
    (Format.DENSE, Format.HICOO): tx.dense_to_hicoo,
    (Format.COO, Format.CSF): tx.coo3_to_csf,
    (Format.COO, Format.DENSE): tx.coo3_to_dense,
    (Format.COO, Format.HICOO): tx.coo3_to_hicoo,
    (Format.CSF, Format.COO): tx.csf_to_coo3,
    (Format.CSF, Format.DENSE): tx.csf_to_dense,
    (Format.ZVC, Format.DENSE): tx.zvc3_to_dense,
    (Format.RLC, Format.COO): tx.rlc3_to_coo3,
    (Format.RLC, Format.DENSE): tx.rlc3_to_dense,
    (Format.HICOO, Format.COO): tx.hicoo_to_coo3,
    (Format.HICOO, Format.DENSE): tx.hicoo_to_dense,
}


@dataclass(frozen=True)
class ConversionReport:
    """Cost and provenance of one MINT conversion."""

    source: Format
    target: Format
    cycles: int
    energy_j: float
    seconds: float
    path: tuple[str, ...]


def find_path(
    source: Format, target: Format, *, tensor: bool
) -> tuple[tuple[Format, Format], ...]:
    """Sequence of direct hops realizing source -> target.

    Resolution order: identity, direct datapath, via COO, via Dense.
    """
    table = _TENSOR_DIRECT if tensor else _MATRIX_DIRECT
    if source is target:
        return ()
    if (source, target) in table:
        return ((source, target),)
    for hub in (Format.COO, Format.DENSE):
        if hub in (source, target):
            continue
        first = (source, hub)
        second = (hub, target)
        if first in table and second in table:
            return (first, second)
    raise ConversionError(
        f"no MINT datapath from {source} to {target} "
        f"({'tensor' if tensor else 'matrix'})"
    )


class MintEngine:
    """A merged-MINT converter instance attached to the accelerator."""

    def __init__(
        self,
        clock_hz: float = 1.0e9,
        energy: EnergyModel = DEFAULT_ENERGY,
    ) -> None:
        self.clock_hz = clock_hz
        self.energy = energy

    def convert(
        self,
        obj: MatrixFormat | TensorFormat,
        target: Format,
        **kwargs: Any,
    ) -> tuple[MatrixFormat | TensorFormat, ConversionReport]:
        """Convert *obj* to *target*, returning (result, cost report).

        ``kwargs`` (e.g. ``block_shape`` for BSR) are forwarded to the final
        hop when it accepts them.
        """
        tensor = isinstance(obj, TensorFormat)
        table = _TENSOR_DIRECT if tensor else _MATRIX_DIRECT
        hops = find_path(obj.format, target, tensor=tensor)
        blocks = BlockSet()
        cycles = 0
        names: list[str] = []
        current: MatrixFormat | TensorFormat = obj
        for idx, hop in enumerate(hops):
            fn = table[hop]
            is_last = idx == len(hops) - 1
            if is_last and kwargs:
                current, hop_cycles = fn(current, blocks, **kwargs)
            else:
                current, hop_cycles = fn(current, blocks)
            cycles += hop_cycles
            names.append(fn.__name__)
        energy_j = blocks.energy_joules(obj.dtype_bits, self.energy)
        report = ConversionReport(
            source=obj.format,
            target=target,
            cycles=cycles,
            energy_j=energy_j,
            seconds=cycles / self.clock_hz,
            path=tuple(names),
        )
        return current, report

    def supported_pairs(self, *, tensor: bool = False) -> list[tuple[Format, Format]]:
        """All (source, target) pairs this engine can realize."""
        from repro.formats.registry import MATRIX_FORMATS, TENSOR_FORMATS

        catalog = TENSOR_FORMATS if tensor else MATRIX_FORMATS
        pairs = []
        for s in catalog:
            for t in catalog:
                try:
                    find_path(s, t, tensor=tensor)
                except ConversionError:
                    continue
                pairs.append((s, t))
        return pairs
