"""MINT conversion engine: graph-routed dispatch, composition and cost reports.

Given ``m`` MCFs and ``a`` ACFs, MINT provides all ``m x a`` conversions
(Sec. V) from one merged block complement.  Routing is delegated to the
:mod:`repro.mint.graph` registry: every datapath self-registers with its
metadata, and :func:`find_path` runs a cost-weighted shortest-path search
over the registered edges — sized to the operand actually being converted —
instead of the old fixed "direct, else via COO, else via Dense" heuristic.
The report records the path taken and sums its cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.formats.base import MatrixFormat, TensorFormat
from repro.formats.registry import Format
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.mint.blockset import BlockSet
from repro.mint.graph import HopStats, conversion_graph
from repro.obs import registry, span

_CONVERSIONS = registry().counter(
    "repro_mint_conversions_total", "MINT conversions, by source and target"
)
_HOP_CYCLES = registry().counter(
    "repro_mint_hop_cycles_total", "Modeled converter cycles, by datapath hop"
)


@dataclass(frozen=True)
class ConversionReport:
    """Cost and provenance of one MINT conversion."""

    source: Format
    target: Format
    cycles: int
    energy_j: float
    seconds: float
    path: tuple[str, ...]


def find_path(
    source: Format,
    target: Format,
    *,
    tensor: bool,
    stats: HopStats | None = None,
) -> tuple[tuple[Format, Format], ...]:
    """Sequence of direct hops realizing source -> target.

    The hops are the cheapest route (estimated cycles for *stats*, or a
    representative operand when omitted) through the registered conversion
    graph.  Raises :class:`~repro.errors.ConversionError` when unreachable.
    """
    graph = conversion_graph(tensor=tensor)
    return tuple(dp.pair for dp in graph.find_path(source, target, stats))


class MintEngine:
    """A merged-MINT converter instance attached to the accelerator.

    Stable in-process primitive; end-to-end callers should prefer
    :meth:`repro.api.session.Session.run`, which drives this engine along
    SAGE's planned route and folds the reports into one
    :class:`~repro.api.result.RunResult`.
    """

    def __init__(
        self,
        clock_hz: float = 1.0e9,
        energy: EnergyModel = DEFAULT_ENERGY,
    ) -> None:
        self.clock_hz = clock_hz
        self.energy = energy

    def convert(
        self,
        obj: MatrixFormat | TensorFormat,
        target: Format,
        **kwargs: Any,
    ) -> tuple[MatrixFormat | TensorFormat, ConversionReport]:
        """Convert *obj* to *target*, returning (result, cost report).

        The route is planned against *obj*'s actual size and sparsity.
        ``kwargs`` (e.g. ``block_shape`` for BSR) are forwarded to the final
        hop when its registered metadata says it accepts them.
        """
        tensor = isinstance(obj, TensorFormat)
        graph = conversion_graph(tensor=tensor)
        hops = graph.find_path(obj.format, target, HopStats.of(obj))
        if kwargs:
            accepted = {name for dp in hops for name in dp.accepts}
            unknown = sorted(set(kwargs) - accepted)
            if unknown:
                raise TypeError(
                    f"no datapath on the {obj.format}->{target} route "
                    f"accepts keyword argument(s) {', '.join(unknown)}"
                )
        blocks = BlockSet()
        cycles = 0
        names: list[str] = []
        current: MatrixFormat | TensorFormat = obj
        with span("mint.convert", source=str(obj.format), target=str(target)):
            for idx, dp in enumerate(hops):
                is_last = idx == len(hops) - 1
                with span("mint.hop", datapath=dp.name):
                    if is_last and kwargs:
                        current, hop_cycles = dp(current, blocks, **kwargs)
                    else:
                        current, hop_cycles = dp.fn(current, blocks)
                # An engaged datapath occupies the converter for at least
                # one cycle even when the operand is empty (it still has to
                # read the descriptor to learn there is nothing to stream).
                hop_cycles = max(int(hop_cycles), 1)
                cycles += hop_cycles
                _HOP_CYCLES.inc(hop_cycles, datapath=dp.name)
                names.append(dp.name)
        _CONVERSIONS.inc(source=str(obj.format), target=str(target))
        energy_j = blocks.energy_joules(obj.dtype_bits, self.energy)
        report = ConversionReport(
            source=obj.format,
            target=target,
            cycles=cycles,
            energy_j=energy_j,
            seconds=cycles / self.clock_hz,
            path=tuple(names),
        )
        return current, report

    def supported_pairs(self, *, tensor: bool = False) -> list[tuple[Format, Format]]:
        """All (source, target) pairs this engine can realize."""
        return conversion_graph(tensor=tensor).supported_pairs()
