"""The shared block complement of a merged MINT instance.

MINT_m "generalizes overlapping building blocks and merges them together"
(Sec. V-A): one sorter, one cluster counter, one (time-multiplexed) prefix
sum unit, one divide/mod bank and one memory controller serve every
conversion.  All conversion routines draw from one :class:`BlockSet`, so
operation counts accumulate in one place for energy reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.area import PrefixSumDesign
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.mint.blocks import (
    BlockStats,
    ClusterCounter,
    MemoryController,
    ParallelDivMod,
    PrefixSumUnit,
    SortingNetwork,
)


@dataclass
class BlockSet:
    """One merged-MINT complement of building blocks."""

    prefix: PrefixSumUnit = field(
        default_factory=lambda: PrefixSumUnit(PrefixSumDesign.HIGHLY_PARALLEL, 32)
    )
    divmod: ParallelDivMod = field(default_factory=lambda: ParallelDivMod(8))
    sorter: SortingNetwork = field(default_factory=lambda: SortingNetwork(16))
    cluster: ClusterCounter = field(default_factory=lambda: ClusterCounter(16))
    memctrl: MemoryController = field(default_factory=lambda: MemoryController(16))

    def total_stats(self) -> BlockStats:
        """Aggregate operation counters across all blocks."""
        total = BlockStats()
        for block in (self.prefix, self.divmod, self.sorter, self.cluster, self.memctrl):
            total += block.stats
        return total

    def energy_joules(
        self, dtype_bits: int = 32, energy: EnergyModel = DEFAULT_ENERGY
    ) -> float:
        """Convert accumulated operation counts to joules."""
        s = self.total_stats()
        return (
            s.int_adds * energy.add_int32
            + s.int_mults * energy.mult_int32
            + s.divides * energy.div_int32
            + s.mods * energy.mod_int32
            + s.compares * energy.compare
            + s.elements_moved * dtype_bits * energy.sram_global_bit
        )
