"""``python -m repro`` dispatch."""

import sys

from repro.cli import main

sys.exit(main())
