"""Shared shim: each seed ``bench_*`` figure/table script is now one
registered ``repro.xp`` experiment; the scripts remain as thin wrappers so
both entry points keep working unchanged:

* ``pytest benchmarks -o python_files='bench_*.py' ...`` — collects the
  shimmed ``bench_*`` functions, which run their experiment through the
  orchestrator (smoke grid under ``REPRO_EXAMPLE_SMOKE=1``) and print the
  rendered markdown table;
* ``python benchmarks/bench_fig04_compactness.py`` — standalone, one
  process per figure: exactly the seed scripts' serial execution model,
  which ``bench_xp_runner.py`` uses as the baseline of its speedup
  measurement.

The experiment definitions live in ``src/repro/xp/paper.py``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

try:  # standalone runs without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def run_experiment_once(name: str, *, smoke: bool | None = None):
    """Run one registered experiment fresh (no cache reuse), print its
    report page, and raise if a cell or the paper-claim check failed."""
    from repro.xp import RunConfig, run_experiments
    from repro.xp.report import render_experiment_md

    if smoke is None:
        smoke = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))
    summary = run_experiments(
        [name],
        RunConfig(smoke=smoke, report=False, record=False),
    )
    run = summary.experiments[0]
    print()
    print(render_experiment_md(run))
    assert run.ok, f"experiment {name}: {run.status}"
    return run


def make_bench(name: str):
    """A pytest-benchmark ``bench_*`` function for one experiment."""

    def bench(once, benchmark):
        run = once(lambda: run_experiment_once(name))
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["cells"] = len(run.cells)
        benchmark.extra_info["status"] = run.status

    bench.__name__ = f"bench_{name}"
    bench.__doc__ = f"Shim over the registered experiment {name!r}."
    return bench


def main(name: str) -> int:
    """Standalone entry point (one experiment, one process, serial)."""
    run_experiment_once(name)
    return 0
