"""Ablation — accelerator scaling: bus width and PE count.

Sweeps the two fabric parameters the walkthrough fixes (Sec. IV-B's 5-slot
bus, Sec. VII-A's 2048 PEs) and verifies the cycle model responds the way
the microarchitecture argument says it should: wider buses shrink streaming
time; more PEs shrink rounds until the column count saturates them.
"""

from __future__ import annotations

from repro.accelerator import AcceleratorConfig, analytical_gemm_stats
from repro.analysis.tables import render_table
from repro.formats.registry import Format


def bench_ablation_scaling(once):
    def run():
        m = k = 4000
        n = 4000
        nnz_a = int(0.05 * m * k)
        rows = []
        stream_by_bus = {}
        for bus_bits in (128, 256, 512, 1024, 2048):
            cfg = AcceleratorConfig(bus_bits=bus_bits)
            rep = analytical_gemm_stats(
                m, k, n, nnz_a, k * n, Format.CSR, Format.DENSE, cfg
            )
            stream_by_bus[bus_bits] = rep.cycles.stream_cycles
            rows.append(
                ["bus", f"{bus_bits} b", f"{rep.cycles.stream_cycles:,}",
                 f"{rep.cycles.total_cycles:,}"]
            )
        rounds_by_pes = {}
        for num_pes in (256, 1024, 2048, 4096, 8192):
            cfg = AcceleratorConfig(num_pes=num_pes)
            rep = analytical_gemm_stats(
                m, k, n, nnz_a, k * n, Format.CSR, Format.DENSE, cfg
            )
            rounds_by_pes[num_pes] = rep.cycles.rounds
            rows.append(
                ["PEs", str(num_pes), f"{rep.cycles.rounds} rounds",
                 f"{rep.cycles.total_cycles:,}"]
            )
        print()
        print(
            render_table(
                ["knob", "value", "effect", "total cycles"],
                rows,
                title="Ablation: fabric scaling (4k x 4k x 4k SpMM at 5%)",
            )
        )
        return stream_by_bus, rounds_by_pes

    stream_by_bus, rounds_by_pes = once(run)
    # Wider bus monotonically reduces stream cycles.
    widths = sorted(stream_by_bus)
    assert all(
        stream_by_bus[a] >= stream_by_bus[b]
        for a, b in zip(widths, widths[1:])
    )
    # PE count divides the rounds until saturation at N columns.
    assert rounds_by_pes[256] > rounds_by_pes[2048]
    assert rounds_by_pes[4096] == rounds_by_pes[8192] == 1
