"""Calibrated fidelity: analytical-speed answers at near-cycle accuracy.

The calibrated tier re-ranks the cycle tier's candidate menu through a
measured per-(kernel, ACF, density-band) factor table — dict lookups
instead of operand materialization + simulation.  This bench builds the
smoke calibration grid into a scratch store, then answers the smoke-sized
Table III suite (both kernels, proxy-scaled as the cycle tier would) at
all three tiers and records:

* per-decision p50 latency per tier — calibrated must stay within 2x of
  analytical (the tier's whole point), and far under cycle;
* top-1 / top-3 agreement of the calibrated ranking with the cycle
  ranking, next to the uncalibrated analytical baseline it improves on.

Headline numbers land in ``benchmarks/out/calibrated.json`` for
``check_floors.py`` (agreement floor 0.9, latency ratio ceiling 2.0).
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

try:  # standalone runs without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sage.calibrate import GRIDS, build_table
from repro.sage.predictor import SIM_CAP_ELEMENTS, Sage, _proxy_workload
from repro.workloads.spec import Kernel
from repro.workloads.suite import MATRIX_SUITE
from repro.xp.artifacts import ArtifactStore

OUT_DIR = Path(__file__).parent / "out"
OUT_PATH = OUT_DIR / "calibrated.json"

REPS = 3  # per-workload timing repetitions (median taken)


def _suite_workloads():
    return [
        _proxy_workload(entry.matrix_workload(kernel), SIM_CAP_ELEMENTS)
        for entry in MATRIX_SUITE
        for kernel in (Kernel.SPMM, Kernel.SPGEMM)
    ]


def _time_tier(sage: Sage, workloads, fidelity: str):
    """(p50 seconds per decision, decisions) for one tier, warm."""
    for wl in workloads:  # warm routes/operand pools once per tier
        sage.predict_matrix(wl, fidelity=fidelity)
    per_wl, decisions = [], []
    for wl in workloads:
        samples = []
        for _ in range(REPS):
            t0 = time.perf_counter()
            decision = sage.predict_matrix(wl, fidelity=fidelity)
            samples.append(time.perf_counter() - t0)
        per_wl.append(statistics.median(samples))
        decisions.append(decision)
    return statistics.median(per_wl), decisions


def _agreement(candidates, cycles):
    """(top1, top3) fraction of *candidates* matching the cycle winner."""
    top1 = top3 = 0
    for cand, cyc in zip(candidates, cycles):
        winner = (cyc.best.mcf, cyc.best.acf)
        if (cand.best.mcf, cand.best.acf) == winner:
            top1 += 1
        if winner in [(c.mcf, c.acf) for c in cand.ranking[:3]]:
            top3 += 1
    return top1 / len(candidates), top3 / len(candidates)


def measure() -> dict:
    workloads = _suite_workloads()
    with tempfile.TemporaryDirectory() as scratch:
        t0 = time.perf_counter()
        build = build_table(GRIDS["smoke"], store=ArtifactStore(scratch))
        build_s = time.perf_counter() - t0
    sage = Sage(calibration=build.table)

    ana_s, ana = _time_tier(sage, workloads, "analytical")
    cal_s, cal = _time_tier(sage, workloads, "calibrated")
    cyc_s, cyc = _time_tier(sage, workloads, "cycle")

    cal_top1, cal_top3 = _agreement(cal, cyc)
    ana_top1, ana_top3 = _agreement(ana, cyc)

    result = {
        "grid": "smoke",
        "build_s": build_s,
        "table_cells": len(build.table.cells),
        "workloads": len(workloads),
        "p50_analytical_ms": ana_s * 1e3,
        "p50_calibrated_ms": cal_s * 1e3,
        "p50_cycle_ms": cyc_s * 1e3,
        "latency_ratio_calibrated_vs_analytical": cal_s / ana_s,
        "speedup_calibrated_vs_cycle": cyc_s / cal_s,
        "top1_agreement": cal_top1,
        "top3_agreement": cal_top3,
        "top1_agreement_analytical": ana_top1,
        "top3_agreement_analytical": ana_top3,
    }
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_calibrated(once, benchmark):
    out = once(measure)
    print()
    print(f"{'tier':>12} | {'p50/decision':>12} | {'top-1':>6} | {'top-3':>6}")
    print(
        f"{'analytical':>12} | {out['p50_analytical_ms']:>10.2f}ms "
        f"| {out['top1_agreement_analytical']:>6.2f} "
        f"| {out['top3_agreement_analytical']:>6.2f}"
    )
    print(
        f"{'calibrated':>12} | {out['p50_calibrated_ms']:>10.2f}ms "
        f"| {out['top1_agreement']:>6.2f} | {out['top3_agreement']:>6.2f}"
    )
    print(
        f"{'cycle':>12} | {out['p50_cycle_ms']:>10.2f}ms "
        f"| {'1.00':>6} | {'1.00':>6}"
    )
    print(
        f"table: {out['table_cells']} cells in {out['build_s']:.2f}s; "
        f"calibrated is {out['latency_ratio_calibrated_vs_analytical']:.2f}x "
        f"analytical latency, {out['speedup_calibrated_vs_cycle']:.1f}x "
        f"faster than cycle"
    )
    print(f"wrote {OUT_PATH}")
    # check_floors.py enforces the acceptance bars on the JSON; assert
    # the structural invariants here.
    assert out["workloads"] == 2 * len(MATRIX_SUITE)
    assert out["top1_agreement"] >= out["top1_agreement_analytical"]
    benchmark.extra_info["top1_agreement"] = round(out["top1_agreement"], 3)
    benchmark.extra_info["latency_ratio"] = round(
        out["latency_ratio_calibrated_vs_analytical"], 2
    )
