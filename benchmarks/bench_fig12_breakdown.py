"""Fig. 12 — cycles / energy / EDP breakdown across the Table II policies.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig12_breakdown`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig12 = make_bench("fig12_breakdown")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig12_breakdown"))
