"""Fig. 12 — cycles / energy / EDP breakdown of SpGEMM on journals,
speech2 and m3plates across the Table II accelerator policies.

Paper claims pinned per sub-figure:
* (a) journals (78.5% dense): Fix_Fix_None2 (EIE) takes the most cycles and
  energy — dense ACFs beat CSR there;
* (b) speech2: Dense(A)-CSC(B) is the best ACF; our work matches the best
  compute and additionally shrinks memory time via an RLC MCF;
* (c) m3plates (extremely sparse): any dense-ACF design is far behind;
  Flex_Flex_None and this work are the closest pair.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.baselines import evaluate_all
from repro.workloads import Kernel, suite_by_name

WORKLOADS = ["journals", "speech2", "m3plates"]


def breakdown() -> dict:
    out = {}
    for name in WORKLOADS:
        wl = suite_by_name(name).matrix_workload(Kernel.SPGEMM)
        out[name] = evaluate_all(wl)
    return out


def bench_fig12(once):
    def run():
        results = breakdown()
        for name, res in results.items():
            rows = []
            for policy, r in res.items():
                b = r.best
                rows.append(
                    [
                        policy,
                        f"{b.ingest_cycles:,}",
                        f"{b.conv_cycles:,}",
                        f"{b.compute_cycles:,}",
                        f"{b.writeback_cycles:,}",
                        f"{b.total_cycles:,}",
                        f"{b.total_energy_j:.2e}",
                        f"{b.edp:.2e}",
                        f"({b.mcf[0].value},{b.mcf[1].value})->"
                        f"({b.acf[0].value},{b.acf[1].value})",
                    ]
                )
            print()
            print(
                render_table(
                    ["policy", "ingest", "conv", "compute", "writeback",
                     "total cyc", "energy J", "EDP", "formats"],
                    rows,
                    title=f"Fig. 12 ({name}, SpGEMM)",
                )
            )
        return results

    results = once(run)
    # (a) journals: EIE is the worst of the seven.
    journals = {k: r.edp for k, r in results["journals"].items()}
    assert journals["Fix_Fix_None2"] == max(journals.values())
    # (c) m3plates: this work and ExTensor far ahead of fixed-dense designs.
    m3 = {k: r.edp for k, r in results["m3plates"].items()}
    assert m3["Flex_Flex_HW"] * 10 < m3["Fix_Fix_None"]
    # Our work is the minimum everywhere.
    for res in results.values():
        ours = res["Flex_Flex_HW"].edp
        assert all(ours <= r.edp * 1.0001 for r in res.values())
