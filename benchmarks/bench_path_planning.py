"""Path-planning micro-benchmark: cold vs warm planner cache.

Times ``Sage().predict_matrix`` over the full Table III matrix suite with
the shared :class:`~repro.mint.cost.PathPlanner` cache cleared (cold) and
pre-populated (warm), plus the conversion-pricing layer in isolation —
where the memoization shows its full effect, since the end-to-end search
also spends time in the compute model the cache cannot help.

Writes the headline numbers to ``benchmarks/out/path_planning.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.formats.registry import Format
from repro.mint.cost import PathPlanner, shared_planner
from repro.sage import Sage
from repro.sage.spaces import MATRIX_ACF_STREAMED, MATRIX_MCF
from repro.workloads import MATRIX_SUITE, Kernel

OUT_PATH = Path(__file__).parent / "out" / "path_planning.json"
ROUNDS = 3


def _run_suite(sage: Sage) -> float:
    t0 = time.perf_counter()
    for entry in MATRIX_SUITE:
        sage.predict_matrix(entry.matrix_workload(Kernel.SPGEMM))
        sage.predict_matrix(entry.matrix_workload(Kernel.SPMM))
    return time.perf_counter() - t0


def _estimate_layer(planner: PathPlanner) -> float:
    """One sweep of every (MCF, ACF, workload) conversion-pricing query."""
    t0 = time.perf_counter()
    for entry in MATRIX_SUITE:
        wl = entry.matrix_workload(Kernel.SPGEMM)
        for src in MATRIX_MCF:
            for dst in MATRIX_ACF_STREAMED:
                if src is dst:
                    continue
                planner.estimate(
                    src, dst, size=wl.m * wl.k, nnz=wl.nnz_a,
                    major_dim=wl.m, dtype_bits=wl.dtype_bits,
                )
    return time.perf_counter() - t0


def measure() -> dict:
    sage = Sage()
    planner = shared_planner()
    cold_samples, warm_samples = [], []
    for _ in range(ROUNDS):
        planner.cache_clear()
        cold_samples.append(_run_suite(sage))
        warm_samples.append(_run_suite(sage))
    info = planner.cache_info()

    # The pricing layer in isolation: every distinct query replanned vs all
    # served from the exact-stats cost cache.
    fresh = PathPlanner()
    layer_cold = _estimate_layer(fresh)
    layer_warm = _estimate_layer(fresh)

    cold_s = statistics.median(cold_samples)
    warm_s = statistics.median(warm_samples)
    result = {
        "suite": "MATRIX_SUITE x {spgemm, spmm}",
        "rounds": ROUNDS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "estimate_layer_cold_s": layer_cold,
        "estimate_layer_warm_s": layer_warm,
        "estimate_layer_speedup": layer_cold / layer_warm,
        "route_cache": vars(info["route"]) | {},
        "cost_cache": vars(info["cost"]) | {},
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_path_planning(once, benchmark):
    out = once(measure)
    print()
    print(
        f"predict_matrix suite: cold {out['cold_s'] * 1e3:.1f} ms, "
        f"warm {out['warm_s'] * 1e3:.1f} ms "
        f"({out['speedup']:.2f}x)"
    )
    print(
        f"conversion pricing layer: cold {out['estimate_layer_cold_s'] * 1e3:.2f} ms, "
        f"warm {out['estimate_layer_warm_s'] * 1e3:.2f} ms "
        f"({out['estimate_layer_speedup']:.0f}x)"
    )
    print(f"wrote {OUT_PATH}")
    # The isolated pricing layer must be dramatically faster warm; the
    # end-to-end bound tolerates timing noise (the compute model the cache
    # cannot help dominates the search, so the margin is structurally thin).
    assert out["speedup"] > 0.9
    assert out["estimate_layer_speedup"] > 5.0
    benchmark.extra_info["speedup"] = round(out["speedup"], 3)
    benchmark.extra_info["estimate_layer_speedup"] = round(
        out["estimate_layer_speedup"], 1
    )
