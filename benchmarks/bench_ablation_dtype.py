"""Ablation — datatype width at the system level (Fig. 4a-ii's consequence).

Fig. 4a-ii shows quantization shrinking the payload while metadata stays
fixed, so compressed formats lose relative ground.  This sweep runs SAGE's
full EDP search at 32 / 16 / 8-bit datatypes and shows the MCF decision
boundaries shifting toward less metadata-hungry formats as the data
shrinks.
"""

from __future__ import annotations

from repro.analysis.compactness import storage_bits
from repro.analysis.tables import render_table
from repro.formats.registry import Format
from repro.sage import Sage
from repro.workloads.spec import Kernel, MatrixWorkload

DTYPES = [32, 16, 8]
DENSITIES = [0.9, 0.5, 0.2, 0.01]


def decisions() -> dict:
    sage = Sage()
    grid = {}
    for bits in DTYPES:
        for density in DENSITIES:
            m = k = 2000
            wl = MatrixWorkload(
                name=f"b{bits}-d{density:g}",
                kernel=Kernel.SPMM,
                m=m,
                k=k,
                n=1000,
                nnz_a=max(1, int(density * m * k)),
                nnz_b=k * 1000,
                dtype_bits=bits,
            )
            grid[(bits, density)] = sage.predict_matrix(wl).mcf[0]
    return grid


def bench_ablation_dtype(once):
    def run():
        grid = decisions()
        rows = [
            [f"{bits}-bit"] + [grid[(bits, d)].value for d in DENSITIES]
            for bits in DTYPES
        ]
        print()
        print(
            render_table(
                ["datatype"] + [f"{d:g}" for d in DENSITIES],
                rows,
                title="Ablation: SAGE's streamed MCF vs datatype "
                "(2k x 2k SpMM)",
            )
        )
        # Show the metadata-share mechanism behind the shift.
        for bits in DTYPES:
            csr = storage_bits(Format.CSR, (2000, 2000), 80_000, bits)
            payload = 80_000 * bits
            print(
                f"  {bits:>2}-bit CSR at 2%: metadata share "
                f"{1 - payload / csr:.0%}"
            )
        return grid

    grid = once(run)
    rank = {"Dense": 0, "ZVC": 1, "RLC": 2, "CSR": 3, "CSC": 3, "COO": 4}
    # Narrower data never moves the choice toward a *more* metadata-heavy
    # format at the same density.
    for d in DENSITIES:
        ranks = [rank[grid[(bits, d)].value] for bits in DTYPES]  # 32 -> 8
        assert ranks == sorted(ranks, reverse=True) or len(set(ranks)) <= 2
