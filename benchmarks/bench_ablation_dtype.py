"""Ablation — datatype width at the system level (Fig. 4a-ii's consequence).

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``ablation_dtype`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_ablation_dtype = make_bench("ablation_dtype")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("ablation_dtype"))
