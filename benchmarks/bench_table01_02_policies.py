"""Tables I & II — the MCF/ACF flexibility taxonomy and evaluated policies.

Not a measurement: regenerates the classification tables from the encoded
policy objects so the configuration driving Figs. 12-14 is auditable.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.baselines import ALL_POLICIES


def bench_tables_1_and_2(once):
    def run():
        rows = []
        for p in ALL_POLICIES:
            mcfs = {f"{a.value}-{b.value}" for a, b in p.mcf_pairs}
            acfs = {f"{a.value}-{b.value}" for a, b in p.acf_pairs}
            rows.append(
                [
                    p.name,
                    p.category,
                    len(p.mcf_pairs),
                    len(p.acf_pairs),
                    len(list(p.candidates())),
                    p.converter.value,
                    "yes" if p.zero_skipping else "no",
                    p.reference,
                    (sorted(mcfs)[0] + ", ..." if len(mcfs) > 1 else next(iter(mcfs))),
                    (sorted(acfs)[0] + ", ..." if len(acfs) > 1 else next(iter(acfs))),
                ]
            )
        print()
        print(
            render_table(
                ["design", "class", "#MCF", "#ACF", "#candidates", "conv",
                 "zero-skip", "exemplar", "MCF e.g.", "ACF e.g."],
                rows,
                title="Tables I/II: evaluated accelerator format policies",
            )
        )
        return rows

    rows = once(run)
    assert len(rows) == 7
