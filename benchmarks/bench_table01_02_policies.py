"""Tables I & II — the MCF/ACF flexibility taxonomy and evaluated policies.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``table01_02_policies`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_tables_1_and_2 = make_bench("table01_02_policies")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("table01_02_policies"))
