"""Serving throughput: naive per-request SAGE vs the warm serve stack.

Replays the Table III matrix suite (both SpGEMM and SpMM scenarios, 20
requests per pass) three ways:

* **naive** — the pre-serve integration style: every request constructs
  ``Sage()`` and runs the full MCF/ACF search in-process;
* **server cold** — first pass through a freshly started
  :class:`~repro.serve.server.SageServer` (every request is a cache miss
  and fans out to the warm-seeded shard pool);
* **server warm** — repeat passes, where the
  :class:`~repro.serve.cache.DecisionCache` answers over TCP.

The acceptance bar for the subsystem is warm server throughput >= 5x the
naive baseline; the headline numbers land in ``benchmarks/out/serve.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import replace
from pathlib import Path

from repro.sage import Sage
from repro.serve import SageServer, ServeClient, ServeConfig
from repro.workloads import MATRIX_SUITE, Kernel

OUT_PATH = Path(__file__).parent / "out" / "serve.json"
WARM_ROUNDS = 5


def _bump(value: int) -> int:
    """Perturb a count without leaving its power-of-two density band."""
    return value + 1 if (value + 1).bit_length() == value.bit_length() else (
        value - 1
    )


def _suite():
    return [
        entry.matrix_workload(kernel)
        for entry in MATRIX_SUITE
        for kernel in (Kernel.SPGEMM, Kernel.SPMM)
    ]


def measure() -> dict:
    suite = _suite()
    requests = len(suite)

    # Naive baseline: one Sage() + full search per request.  (The shared
    # planner cache stays process-global and warm, which only flatters
    # the baseline — the measured serve advantage is a lower bound.)
    t0 = time.perf_counter()
    for wl in suite:
        Sage().predict(wl)
    naive_s = time.perf_counter() - t0

    config = ServeConfig(port=0, shards=2, batch_window_ms=1.0)
    with SageServer(serve=config) as server:
        with ServeClient(*server.address) as client:
            t0 = time.perf_counter()
            client.predict_many(suite)  # cold: all misses, sharded fan-out
            cold_s = time.perf_counter() - t0
            warm_samples = []
            for _ in range(WARM_ROUNDS):
                t0 = time.perf_counter()
                for wl in suite:  # warm: cache hits over TCP, one per RPC
                    client.predict(wl)
                warm_samples.append(time.perf_counter() - t0)
            # Near traffic: every statistic nudged inside its density
            # band — never seen exactly, so the banded tier must answer
            # (the Table III suite has no same-band duplicates of its
            # own, which is why near_hits stays 0 without this pass).
            near_suite = [
                replace(wl, name=f"{wl.name}~near", nnz_a=_bump(wl.nnz_a))
                for wl in suite
            ]
            t0 = time.perf_counter()
            for wl in near_suite:
                client.predict(wl)
            near_s = time.perf_counter() - t0
            stats = client.stats()
    warm_s = statistics.median(warm_samples)

    result = {
        "suite": "MATRIX_SUITE x {spgemm, spmm}",
        "requests_per_pass": requests,
        "warm_rounds": WARM_ROUNDS,
        "naive_s": naive_s,
        "server_cold_s": cold_s,
        "server_warm_s": warm_s,
        "server_near_s": near_s,
        "naive_rps": requests / naive_s,
        "server_cold_rps": requests / cold_s,
        "server_warm_rps": requests / warm_s,
        "server_near_rps": requests / near_s,
        "speedup_warm_vs_naive": naive_s / warm_s,
        "speedup_near_vs_naive": naive_s / near_s,
        "cache": stats["cache"],
        "latency_ms": stats["latency_ms"],
        "shards": len(stats["shards"]),
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_serve(once, benchmark):
    out = once(measure)
    print()
    print(f"{'pass':>12} | {'total':>9} | {'req/s':>9}")
    for label, key in (
        ("naive", "naive_s"),
        ("server cold", "server_cold_s"),
        ("server warm", "server_warm_s"),
        ("server near", "server_near_s"),
    ):
        seconds = out[key]
        rps = out["requests_per_pass"] / seconds
        print(f"{label:>12} | {seconds * 1e3:>7.1f}ms | {rps:>9.1f}")
    print(
        f"warm server vs naive: {out['speedup_warm_vs_naive']:.1f}x "
        f"(cache hit-rate {out['cache']['hit_rate']:.2f}, "
        f"near hits {out['cache']['near_hits']}, "
        f"p50 {out['latency_ms']['p50']:.2f} ms)"
    )
    print(f"wrote {OUT_PATH}")
    assert out["speedup_warm_vs_naive"] >= 5.0
    assert out["cache"]["near_hits"] >= 1
    benchmark.extra_info["speedup_warm_vs_naive"] = round(
        out["speedup_warm_vs_naive"], 1
    )
    benchmark.extra_info["server_warm_rps"] = round(out["server_warm_rps"], 1)
