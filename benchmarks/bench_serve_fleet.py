"""Fleet serving under Zipf-skewed traffic replay: single vs fleet.

The serve-fleet acceptance bar: a 2-replica consistent-hash fleet
speaking the binary wire must sustain >= 2x the request rate of the
single-process JSON-lines server it replaced, with warm-steady-state
p99 under 50 ms.  This bench is the loadgen that measures it:

* a **universe** of synthetic workloads spanning sizes and density
  bands, sampled **Zipf-skewed** (rank-``s`` weights) the way real
  prediction traffic repeats its hot workloads;
* **thin raw-socket clients**: every request is pre-encoded once and
  replayed as raw bytes, and replies are validated with a byte scan —
  client-side CPU stays out of the measurement (decision *correctness*
  over the wire is pinned by ``tests/serve``, not here);
* three phases over the same replayed sequence, warm in every case:
  ``single_json`` (the PR-2-era deployment: one server, JSON lines),
  ``single_binary`` (the same server, framed), and ``fleet_binary``
  (router + 2 replicas + speculative warming, frames).

Per-request wall time is recorded client-side and split by the cache
``outcome`` each reply names, so the table shows where the tail lives
(hit / near-hit / miss).  Headline numbers land in
``benchmarks/out/serve_fleet.json`` and are floored by
``check_floors.py`` (speedup >= 2x, warm p99 <= 50 ms).
"""

from __future__ import annotations

import json
import math
import random
import socket
import threading
import time
from pathlib import Path

from repro.serve import (
    RouterConfig,
    SageRouter,
    SageServer,
    ServeConfig,
    routing_key,
)
from repro.serve import wire
from repro.workloads.spec import Kernel, MatrixWorkload

OUT_PATH = Path(__file__).parent / "out" / "serve_fleet.json"

UNIVERSE = 24  # distinct workloads in the traffic model
REQUESTS = 600  # timed requests per phase
THREADS = 4  # concurrent replay clients
ZIPF_S = 1.1  # skew exponent (rank-weighted 1/r^s)
SEED = 20210517  # the paper's conference date; any constant works

_SERVE = ServeConfig(port=0, shards=0, batch_window_ms=0.5, warm_bands=0)
_FLEET_REPLICAS = 2

_OUTCOMES = ("hit", "near_hit", "miss", "bypassed")


def _universe() -> list[MatrixWorkload]:
    """Deterministic workload universe across sizes and density bands."""
    rng = random.Random(SEED)
    out = []
    for i in range(UNIVERSE):
        m = rng.choice((96, 128, 192, 256, 384))
        k = rng.choice((64, 96, 128, 192))
        n = rng.choice((32, 64, 96))
        density = rng.choice((0.002, 0.01, 0.03, 0.1, 0.3))
        nnz_a = max(1, int(m * k * density))
        out.append(MatrixWorkload(
            name=f"zipf-{i}", kernel=Kernel.SPMM, m=m, k=k, n=n,
            nnz_a=nnz_a, nnz_b=k * n, dtype_bits=32,
        ))
    return out


def _zipf_sequence(universe: list[MatrixWorkload]) -> list[int]:
    """The replayed request sequence: Zipf-skewed indexes, fixed seed.

    Every phase replays this exact sequence, so the comparison isolates
    the serving stack, not the traffic draw.
    """
    rng = random.Random(SEED + 1)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(universe))]
    return rng.choices(range(len(universe)), weights=weights, k=REQUESTS)


def _encode_json(wl: MatrixWorkload) -> bytes:
    payload = {"op": "predict", "workload": wl.to_dict(), "top": 1}
    return (json.dumps(payload) + "\n").encode()


def _encode_binary(wl: MatrixWorkload) -> bytes:
    payload = {"op": "predict", "workload": wl.to_dict(), "top": 1}
    return wire.encode_frame(
        payload, packed=True, routing_key=routing_key(wl)
    )


def _scan_outcome(body: bytes) -> str:
    """Cheap reply validation: ok-flag plus the outcome label byte-scan."""
    if b'"ok": true' not in body and b'"ok":true' not in body:
        raise AssertionError(f"request failed: {body[:200]!r}")
    for outcome in _OUTCOMES:
        if outcome.encode() in body:
            return outcome
    return "hit"  # replies older than the outcome field


class _ThinClient:
    """Raw-socket replayer: pre-encoded bytes out, byte-scanned reply in."""

    def __init__(self, address: tuple[str, int], binary: bool) -> None:
        self._sock = socket.create_connection(address, timeout=30.0)
        self._file = self._sock.makefile("rwb")
        self._binary = binary

    def request(self, encoded: bytes) -> str:
        self._file.write(encoded)
        self._file.flush()
        if self._binary:
            header = self._file.read(wire.HEADER.size)
            _, length = wire.parse_header(header)
            body = self._file.read(length)
        else:
            body = self._file.readline()
        return _scan_outcome(body)

    def close(self) -> None:
        self._file.close()
        self._sock.close()


def _replay(
    address: tuple[str, int],
    encoded: list[bytes],
    sequence: list[int],
    binary: bool,
) -> dict:
    """Replay the sequence across THREADS clients; per-outcome latencies."""
    chunks = [sequence[i::THREADS] for i in range(THREADS)]
    samples: list[list[tuple[str, float]]] = [[] for _ in range(THREADS)]
    errors: list[Exception] = []

    def worker(chunk: list[int], sink: list) -> None:
        try:
            client = _ThinClient(address, binary)
            try:
                for index in chunk:
                    t0 = time.perf_counter()
                    outcome = client.request(encoded[index])
                    sink.append((outcome, time.perf_counter() - t0))
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chunk, sink), daemon=True)
        for chunk, sink in zip(chunks, samples)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    flat = [s for sink in samples for s in sink]
    by_outcome: dict[str, list[float]] = {o: [] for o in _OUTCOMES}
    for outcome, latency in flat:
        by_outcome[outcome].append(latency)
    return {
        "requests": len(flat),
        "elapsed_s": elapsed,
        "rps": len(flat) / elapsed,
        "latency_ms": _percentiles([lat for _, lat in flat]),
        "latency_by_outcome_ms": {
            o: _percentiles(lats) for o, lats in by_outcome.items() if lats
        },
    }


def _percentiles(latencies_s: list[float]) -> dict:
    ordered = sorted(latencies_s)
    out: dict = {"count": len(ordered)}
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        if not ordered:
            out[label] = None
            continue
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        out[label] = ordered[index] * 1e3
    return out


def _warm(address: tuple[str, int], encoded: list[bytes], binary: bool) -> None:
    """Two passes over the universe: decision caches, then reply caches."""
    client = _ThinClient(address, binary)
    try:
        for _ in range(2):
            for request in encoded:
                client.request(request)
    finally:
        client.close()


def measure() -> dict:
    universe = _universe()
    sequence = _zipf_sequence(universe)
    json_encoded = [_encode_json(wl) for wl in universe]
    binary_encoded = [_encode_binary(wl) for wl in universe]
    phases: dict[str, dict] = {}

    # Phase 1+2: the single-process server, legacy lines then frames.
    with SageServer(serve=_SERVE) as server:
        _warm(server.address, json_encoded, binary=False)
        phases["single_json"] = _replay(
            server.address, json_encoded, sequence, binary=False
        )
        _warm(server.address, binary_encoded, binary=True)
        phases["single_binary"] = _replay(
            server.address, binary_encoded, sequence, binary=True
        )

    # Phase 3: the fleet — router + replicas + speculative warming.
    fleet_serve = ServeConfig(
        port=0, shards=0, batch_window_ms=0.5, warm_bands=1
    )
    with SageRouter(
        router=RouterConfig(replicas=_FLEET_REPLICAS, serve=fleet_serve)
    ) as fleet:
        _warm(fleet.address, binary_encoded, binary=True)
        phases["fleet_binary"] = _replay(
            fleet.address, binary_encoded, sequence, binary=True
        )
        stats = fleet.stats()

    result = {
        "universe": len(universe),
        "requests_per_phase": REQUESTS,
        "threads": THREADS,
        "zipf_s": ZIPF_S,
        "replicas": _FLEET_REPLICAS,
        "phases": phases,
        "speedup_fleet_vs_single": (
            phases["fleet_binary"]["rps"] / phases["single_json"]["rps"]
        ),
        "speedup_binary_vs_json_single": (
            phases["single_binary"]["rps"] / phases["single_json"]["rps"]
        ),
        "warm_p99_ms": phases["fleet_binary"]["latency_ms"]["p99"],
        "fleet_relay": stats["fleet"]["relay"],
        "fleet_requests": stats["requests"],
        "fleet_cache": stats["cache"],
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_serve_fleet(once, benchmark):
    out = once(measure)
    print()
    print(f"{'phase':>14} | {'req/s':>8} | {'p50':>8} | {'p99':>8}")
    for name in ("single_json", "single_binary", "fleet_binary"):
        phase = out["phases"][name]
        lat = phase["latency_ms"]
        print(
            f"{name:>14} | {phase['rps']:>8.0f} | {lat['p50']:>6.2f}ms "
            f"| {lat['p99']:>6.2f}ms"
        )
    fleet = out["phases"]["fleet_binary"]
    for outcome, lat in fleet["latency_by_outcome_ms"].items():
        print(
            f"  fleet[{outcome}]: p50={lat['p50']:.2f}ms "
            f"p99={lat['p99']:.2f}ms over {lat['count']} request(s)"
        )
    print(
        f"fleet vs single-json: {out['speedup_fleet_vs_single']:.1f}x "
        f"({out['replicas']} replicas, warm p99 {out['warm_p99_ms']:.2f} ms)"
    )
    print(f"wrote {OUT_PATH}")
    assert out["speedup_fleet_vs_single"] >= 2.0
    assert out["warm_p99_ms"] <= 50.0
    benchmark.extra_info["speedup_fleet_vs_single"] = round(
        out["speedup_fleet_vs_single"], 1
    )
    benchmark.extra_info["fleet_rps"] = round(fleet["rps"], 1)
    benchmark.extra_info["warm_p99_ms"] = round(out["warm_p99_ms"], 2)
