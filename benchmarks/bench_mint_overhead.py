"""Sec. VII-B — MINT area/power overhead (the MINT_b / MINT_m / MINT_mr table).

Paper numbers pinned: 0.95 / 0.41 / 0.23 mm^2; merging saves ~57%, reuse a
further ~45%; the divide+mod bank is 74% / 65% of MINT_m's area / power;
MINT_m is 0.5% / 0.4% of the 16384-PE accelerator.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.mint import MintDesign, mint_area, mint_power
from repro.mint.designs import (
    CONVERTER_BLOCKS,
    accelerator_overhead,
    divmod_fraction,
)


def bench_mint_overhead(once, benchmark):
    def run():
        paper_area = {
            MintDesign.BASELINE: 0.95,
            MintDesign.MERGED: 0.41,
            MintDesign.MERGED_REUSE: 0.23,
        }
        rows = [
            [
                d.value,
                f"{mint_area(d):.4f}",
                f"{paper_area[d]:.2f}",
                f"{mint_power(d):.1f}",
            ]
            for d in MintDesign
        ]
        print()
        print(
            render_table(
                ["design", "area mm^2 (ours)", "area (paper)", "power mW"],
                rows,
                title="MINT design points at 28 nm, 1 GHz",
            )
        )
        print("per-converter block inventories (MINT_b sums these):")
        for name, inv in CONVERTER_BLOCKS.items():
            print(f"  {name:>13}: " + ", ".join(f"{k} x{v}" for k, v in inv.items()))
        af, pf = divmod_fraction()
        oa, op = accelerator_overhead()
        print(
            f"divide+mod share of MINT_m: area {af:.1%} / power {pf:.1%} "
            f"(paper 74% / 65%)"
        )
        print(
            f"MINT_m vs 16384-MAC accelerator: area {oa:.2%} / power {op:.2%} "
            f"(paper 0.5% / 0.4%)"
        )
        return {
            "areas": {d: mint_area(d) for d in MintDesign},
            "divmod": (af, pf),
            "overhead": (oa, op),
        }

    out = once(run)
    areas = out["areas"]
    assert abs(areas[MintDesign.BASELINE] - 0.95) / 0.95 < 0.05
    assert abs(areas[MintDesign.MERGED] - 0.41) / 0.41 < 0.05
    assert abs(areas[MintDesign.MERGED_REUSE] - 0.23) / 0.23 < 0.05
    benchmark.extra_info["areas_mm2"] = {
        d.value: round(a, 4) for d, a in areas.items()
    }
