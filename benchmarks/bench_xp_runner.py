"""Orchestrator throughput: serial seed-style scripts vs ``repro xp run``.

The seed reproduction ran its figure/table suite as ~18 standalone
scripts — one Python process per figure, serial within each.  This bench
replays that execution model against the ``repro.xp`` orchestrator on the
same smoke grid, three ways:

* **serial scripts** — one ``repro xp run <name> --serial`` subprocess
  per experiment (process startup, cold caches and serial cells per
  figure — exactly what running the seed scripts one by one cost);
* **orchestrated** — a single ``repro xp run --all`` process: one warm
  :class:`~repro.api.session.Session`, one planner cache, every cell of
  every experiment in one fork-pool batch;
* **resume** — a second ``repro xp run --all --resume``: every cell
  answered from the content-hashed artifact store, **zero re-executed**.

The acceptance bar is orchestrated >= 2x the serial scripts; the
headline numbers (plus the per-run records the runner itself appends)
land in ``benchmarks/out/xp_runner.json`` under ``comparison``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:  # standalone runs without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.xp import default_store_root, experiment_names

OUT_DIR = Path(__file__).parent / "out"
OUT_PATH = OUT_DIR / "xp_runner.json"


def _run_cli(args: list[str], *, env: dict) -> float:
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(Path(__file__).parent.parent),
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, (args, proc.stdout[-2000:], proc.stderr[-2000:])
    return elapsed


def measure() -> dict:
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    names = experiment_names()
    store = default_store_root()

    with tempfile.TemporaryDirectory() as scratch:
        # Serial seed-style baseline: one process per figure, serial cells,
        # scratch store/journal so the baseline leaves no cache behind.
        t0 = time.perf_counter()
        for name in names:
            _run_cli(
                ["xp", "run", name, "--smoke", "--force", "--serial",
                 "--no-report", "--store", f"{scratch}/store",
                 "--out", scratch],
                env=env,
            )
        serial_s = time.perf_counter() - t0

    orchestrated_s = _run_cli(
        ["xp", "run", "--all", "--smoke", "--force"], env=env
    )
    resume_s = _run_cli(
        ["xp", "run", "--all", "--smoke", "--resume"], env=env
    )

    doc = json.loads(OUT_PATH.read_text())
    last = doc["runs"][-1]
    assert last["resume"] and last["cells"] > 100, last
    result = {
        "experiments": len(names),
        "grid": "smoke",
        "cells": last["cells"],
        "serial_scripts_s": serial_s,
        "orchestrated_s": orchestrated_s,
        "resume_s": resume_s,
        "speedup_vs_serial_scripts": serial_s / orchestrated_s,
        "resume_executed_cells": last["executed_cells"],
        "resume_cached_cells": last["cached_cells"],
    }
    doc["comparison"] = result
    OUT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    assert store.exists()  # the orchestrated pass populated the real store
    return result


def bench_xp_runner(once, benchmark):
    out = once(measure)
    print()
    print(f"{'pass':>16} | {'total':>9}")
    for label, key in (
        ("serial scripts", "serial_scripts_s"),
        ("orchestrated", "orchestrated_s"),
        ("resume (cache)", "resume_s"),
    ):
        print(f"{label:>16} | {out[key]:>8.2f}s")
    print(
        f"orchestrated vs serial seed scripts: "
        f"{out['speedup_vs_serial_scripts']:.2f}x over {out['experiments']} "
        f"experiments / {out['cells']} cells; resume re-executed "
        f"{out['resume_executed_cells']} cells"
    )
    print(f"wrote {OUT_PATH}")
    # The regression gate is check_floors.py's conservative 1.5 floor on
    # the recorded JSON; asserting the measured ~2.5x here would just
    # make that floor dead code and flake on contended runners.
    assert out["speedup_vs_serial_scripts"] >= 1.5
    assert out["resume_executed_cells"] == 0
    benchmark.extra_info["speedup_vs_serial_scripts"] = round(
        out["speedup_vs_serial_scripts"], 2
    )
    benchmark.extra_info["cells"] = out["cells"]
