"""Bench-smoke regression floors: fail CI when headline speedups regress.

Each bench writes its headline numbers to ``benchmarks/out/*.json``; this
script re-reads them and enforces conservative floors — far below the
currently measured values, so only a genuine regression (or a broken
bench) trips them, not machine noise.

Run after the benches::

    PYTHONPATH=src python benchmarks/check_floors.py

Exit status is non-zero if any floor is violated or a bench JSON is
missing, listing every failure.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: file -> {json key: bound}.  A bare number is a minimum (floor); a
#: ``{"max": v}`` dict is a ceiling (e.g. a latency bound).  Measured
#: values at the time the floors were set: path_planning warm-route
#: speedup ~1.5x and estimate-layer memoization ~220x; serve
#: warm-vs-naive ~130x; simulate_many vectorized-vs-reference ~130x.
FLOORS: dict[str, dict[str, float]] = {
    "path_planning.json": {
        "speedup": 1.1,
        "estimate_layer_speedup": 20.0,
    },
    "serve.json": {
        "speedup_warm_vs_naive": 5.0,
        # The banded tier must actually fire on the near-traffic pass
        # (it silently recorded 0 before dims were banded in band_key).
        "cache.near_hits": 1,
    },
    # Fleet loadgen (bench_serve_fleet.py): router + 2 replicas on the
    # binary wire vs the single-process JSON-lines server, Zipf replay.
    # Measured ~3x speedup and ~2 ms warm p99 on a single core; the p99
    # bound is a ceiling ("max"), per the serve-fleet acceptance bar.
    "serve_fleet.json": {
        "speedup_fleet_vs_single": 2.0,
        "warm_p99_ms": {"max": 50.0},
        # The edge + replica caches must actually carry the hot set.
        "fleet_relay.edge_hits": 1,
    },
    "simulate_many.json": {
        "speedup_vectorized_vs_reference": 5.0,
        "speedup_batch_vs_reference": 5.0,
        # Zero-copy operand plane vs per-job pickling on the shared
        # large-stationary scenario, measured ~5x on a single core.
        "large_operand.speedup_shm_vs_pickle": 3.0,
    },
    # The obs plane must stay within ~5% of REPRO_OBS=off on the predict
    # hot path (median of paired per-round ratios, measured ~0.98-1.05).
    "obs_overhead.json": {
        "off_vs_on_ratio": 0.95,
        # The sample trace artifact must actually contain spans.
        "trace_sample_events": 4,
    },
    # Orchestrated xp run vs one-process-per-figure seed scripts, measured
    # ~2.5x on a single core (process startup + warm-cache amortization)
    # and higher with a real fork pool.  Dotted keys index into nested
    # objects ("comparison" is written by bench_xp_runner.py).
    "xp_runner.json": {
        "comparison.speedup_vs_serial_scripts": 1.5,
    },
    # Tune sweeps resume from the artifact store: a cached re-run must be
    # far faster than the cold sweep (measured ~40x on a single core) and
    # the smoke space must keep a non-trivial front.
    "tune.json": {
        "speedup_resume_vs_cold": 3.0,
        "front_size": 2,
    },
    # Calibrated fidelity (bench_calibrated.py): the tier must keep its
    # two-sided promise on the smoke suite — analytical-speed answers
    # (measured ~1.15x analytical p50, ceiling 2x) at near-cycle ranking
    # quality (measured 0.95 top-1 agreement with the cycle tier against
    # ~0.5 uncalibrated; floor 0.9).
    "calibrated.json": {
        "top1_agreement": 0.9,
        "latency_ratio_calibrated_vs_analytical": {"max": 2.0},
        "speedup_calibrated_vs_cycle": 2.0,
    },
}

#: file -> the bench script that produces it, named in failure messages
#: so a missing artifact points straight at the command to re-run.
BENCH_SOURCES: dict[str, str] = {
    "path_planning.json": "bench_path_planning.py",
    "serve.json": "bench_serve.py",
    "serve_fleet.json": "bench_serve_fleet.py",
    "simulate_many.json": "bench_simulate_many.py",
    "obs_overhead.json": "bench_obs_overhead.py",
    "xp_runner.json": "bench_xp_runner.py",
    "tune.json": "bench_tune.py",
    "calibrated.json": "bench_calibrated.py",
}


def _source_hint(filename: str) -> str:
    bench = BENCH_SOURCES.get(filename)
    if bench is None:
        return f"re-run the bench that writes {filename}"
    return (
        f"run: PYTHONPATH=src python -m pytest benchmarks/{bench} "
        f"-o python_files='bench_*.py' -o python_functions='bench_*' -q -s"
    )


def _lookup(data: dict, key: str):
    """Resolve a dotted key path; returns (value, error-or-None).

    A miss names the exact segment that was absent and where, so a floor
    on ``comparison.speedup`` failing because ``comparison`` never made
    it into the JSON reads as that — not as a bare KeyError or an
    indistinguishable "absent or non-numeric".
    """
    value = data
    parts = key.split(".")
    for depth, part in enumerate(parts):
        where = "top level" if depth == 0 else f"under {'.'.join(parts[:depth])!r}"
        if not isinstance(value, dict):
            return None, (
                f"cannot descend into {part!r}: {where} is "
                f"{type(value).__name__}, not an object"
            )
        if part not in value:
            return None, f"key {part!r} absent at {where}"
        value = value[part]
    return value, None


def check(out_dir: Path = OUT_DIR) -> list[str]:
    """Return a list of floor violations (empty = all good)."""
    failures: list[str] = []
    for filename, floors in sorted(FLOORS.items()):
        path = out_dir / filename
        if not path.is_file():
            failures.append(
                f"{filename}: missing from {out_dir} — {_source_hint(filename)}"
            )
            continue
        data = json.loads(path.read_text())
        for key, bound in sorted(floors.items()):
            value, miss = _lookup(data, key)
            if isinstance(bound, dict):
                ceiling, kind, ok = bound["max"], "ceiling", (
                    isinstance(value, (int, float)) and value <= bound["max"]
                )
                limit = ceiling
            else:
                kind, ok = "floor", (
                    isinstance(value, (int, float)) and value >= bound
                )
                limit = bound
            if miss is not None:
                failures.append(
                    f"{filename}: {key} — {miss} "
                    f"(stale or truncated artifact? {_source_hint(filename)})"
                )
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(
                    f"{filename}: {key} is {type(value).__name__} "
                    f"({value!r}), expected a number"
                )
            elif not ok:
                failures.append(
                    f"{filename}: {key} = {value:.2f} "
                    f"{'below floor' if kind == 'floor' else 'above ceiling'}"
                    f" {limit:g}"
                )
            else:
                print(
                    f"ok: {filename} {key} = {value:.2f} ({kind} {limit:g})"
                )
    return failures


def main() -> int:
    failures = check()
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
