"""Fig. 11 — GPU H2D/D2H transfer share of conversion wall time.

Paper claims pinned: "transferring data can consume up to 75% of the total
time, and has a geomean of roughly 50%" — the motivation for converting
next to the accelerator instead of offloading to the host.
"""

from __future__ import annotations

from repro.analysis.compactness import storage_bits
from repro.analysis.tables import render_table
from repro.baselines import GpuModel
from repro.formats.registry import Format
from repro.util.stats import geomean
from repro.workloads import MATRIX_SUITE


def transfer_shares() -> dict:
    gpu = GpuModel()
    rows, shares = [], []
    for entry in MATRIX_SUITE:
        m, k = entry.dims
        # Dense->CSR offload: ship the dense matrix over, the CSR back.
        bytes_in = storage_bits(Format.DENSE, (m, k), entry.nnz) / 8
        bytes_out = storage_bits(Format.CSR, (m, k), entry.nnz) / 8
        dev, h2d, d2h = gpu.conversion_time(bytes_in, bytes_out)
        share = (h2d + d2h) / (dev + h2d + d2h)
        shares.append(share)
        rows.append(
            [entry.name, f"{dev * 1e3:.2f}", f"{(h2d + d2h) * 1e3:.2f}",
             f"{share:.0%}"]
        )
    return {"rows": rows, "geomean": geomean(shares), "max": max(shares)}


def bench_fig11(once, benchmark):
    def run():
        r = transfer_shares()
        print()
        print(
            render_table(
                ["workload", "device ms", "H2D+D2H ms", "transfer share"],
                r["rows"],
                title="Fig. 11: GPU transfer-to-total ratio for Dense->CSR offload",
            )
        )
        print(
            f"geomean {r['geomean']:.0%} (paper ~50%), "
            f"max {r['max']:.0%} (paper up to 75%)"
        )
        return r

    r = once(run)
    assert 0.30 <= r["geomean"] <= 0.70
    assert r["max"] <= 0.85
    benchmark.extra_info["geomean_share"] = r["geomean"]
