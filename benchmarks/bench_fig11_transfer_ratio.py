"""Fig. 11 — GPU H2D/D2H transfer share of conversion wall time.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig11_transfer_ratio`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig11 = make_bench("fig11_transfer_ratio")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig11_transfer_ratio"))
