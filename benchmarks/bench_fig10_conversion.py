"""Fig. 10 — conversion wall time and energy: MINT vs MKL-CPU vs cuSPARSE-GPU.

Regenerates (a) CSR->CSC and (b) Dense->CSR execution time over the
Table III matrices, and (c) the energy comparison.  Paper claims pinned:
MINT shows faster average conversion time than both hosts (the abstract's
~4x over software conversion) and roughly three orders of magnitude energy
improvement.
"""

from __future__ import annotations

from repro.analysis.compactness import storage_bits
from repro.analysis.tables import render_table
from repro.baselines import CpuModel, GpuModel
from repro.formats.registry import Format
from repro.mint.cost import estimate_conversion_cost
from repro.util.stats import geomean
from repro.workloads import MATRIX_SUITE


def conversion_comparison(src: Format, dst: Format) -> dict:
    cpu, gpu = CpuModel(), GpuModel()
    rows, speed_cpu, speed_gpu, energy_ratio = [], [], [], []
    for entry in MATRIX_SUITE:
        m, k = entry.dims
        nnz = entry.nnz
        mint = estimate_conversion_cost(
            src, dst, size=m * k, nnz=nnz, major_dim=m
        )
        bytes_in = storage_bits(src, (m, k), nnz) / 8
        bytes_out = storage_bits(dst, (m, k), nnz) / 8
        t_cpu = cpu.conversion_time(bytes_in, bytes_out)
        dev, h2d, d2h = gpu.conversion_time(bytes_in, bytes_out)
        t_gpu = dev + h2d + d2h
        mint_s = max(mint.seconds, 1e-9)
        speed_cpu.append(t_cpu / mint_s)
        speed_gpu.append(t_gpu / mint_s)
        e_gpu = gpu.conversion_energy(t_gpu)
        energy_ratio.append(e_gpu / max(mint.energy_j, 1e-12))
        rows.append(
            [
                entry.name,
                f"{mint.seconds * 1e3:.3f}",
                f"{t_cpu * 1e3:.3f}",
                f"{t_gpu * 1e3:.3f}",
                f"{mint.energy_j:.2e}",
                f"{cpu.conversion_energy(t_cpu):.2e}",
                f"{e_gpu:.2e}",
            ]
        )
    return {
        "rows": rows,
        "speedup_cpu": geomean(speed_cpu),
        "speedup_gpu": geomean(speed_gpu),
        "energy_ratio": geomean(energy_ratio),
    }


def bench_fig10(once, benchmark):
    def run():
        out = {}
        for src, dst, tag in [
            (Format.CSR, Format.CSC, "a: CSR->CSC"),
            (Format.DENSE, Format.CSR, "b: Dense->CSR"),
        ]:
            r = conversion_comparison(src, dst)
            print()
            print(
                render_table(
                    ["workload", "MINT ms", "MKL-CPU ms", "cuSPARSE-GPU ms",
                     "MINT J", "CPU J", "GPU J"],
                    r["rows"],
                    title=f"Fig. 10{tag} (GPU time includes H2D/D2H)",
                )
            )
            print(
                f"geomean speedup: {r['speedup_cpu']:.1f}x vs CPU, "
                f"{r['speedup_gpu']:.1f}x vs GPU (paper: ~4x vs software); "
                f"GPU/MINT energy ratio {r['energy_ratio']:.1e} "
                f"(paper: ~3 orders of magnitude)"
            )
            out[tag] = r
        return out

    out = once(run)
    csr2csc = out["a: CSR->CSC"]
    assert csr2csc["speedup_cpu"] > 1.0 and csr2csc["speedup_gpu"] > 1.0
    assert csr2csc["energy_ratio"] >= 1e3
    benchmark.extra_info["geomean_speedup_cpu"] = csr2csc["speedup_cpu"]
    benchmark.extra_info["geomean_speedup_gpu"] = csr2csc["speedup_gpu"]
