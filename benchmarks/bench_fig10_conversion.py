"""Fig. 10 — conversion wall time and energy: MINT vs MKL-CPU vs cuSPARSE-GPU.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig10_conversion`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig10 = make_bench("fig10_conversion")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig10_conversion"))
