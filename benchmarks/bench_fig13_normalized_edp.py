"""Fig. 13 — SpGEMM and SpMM normalized EDP of every baseline vs this work.

Per workload, the SpGEMM and SpMM EDPs are averaged first (the figure shows
"the averaged SpGEMM and SpMM normalized EDP"), then normalized to this
work and aggregated by geomean / max across the ten matrix workloads.

Paper numbers next to ours (reduction = (baseline - ours) / ours):

    geomean: Fix_Fix_None 369%, Fix_Fix_None2 63%, Fix_Flex_HW 20%,
             Flex_Flex_None 15%, Flex_Fix_HW 143%  (average ~122%)
    max:     9860%, 99%, 79%, 44%, 7338%

Our model preserves the *ordering* exactly; see EXPERIMENTS.md for why the
literal-dense-compute modeling of TPU/NVDLA inflates their extreme-sparsity
maxima relative to the paper's (unspecified) baseline compute model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.edp import edp_table
from repro.analysis.tables import render_table
from repro.baselines import evaluate_all
from repro.workloads import MATRIX_SUITE, Kernel

PAPER_GEOMEAN = {
    "Fix_Fix_None": 369.0,
    "Fix_Fix_None2": 63.0,
    "Fix_Flex_HW": 20.0,
    "Flex_Flex_None": 15.0,
    "Flex_Fix_HW": 143.0,
}
PAPER_MAX = {
    "Fix_Fix_None": 9860.0,
    "Fix_Fix_None2": 99.0,
    "Fix_Flex_HW": 79.0,
    "Flex_Flex_None": 44.0,
    "Flex_Fix_HW": 7338.0,
}


def fig13_table() -> dict:
    per_wl: dict[str, dict[str, float]] = {}
    conv_energy = []
    total_energy = []
    for entry in MATRIX_SUITE:
        sums: dict[str, list[float]] = {}
        for kernel in (Kernel.SPGEMM, Kernel.SPMM):
            res = evaluate_all(entry.matrix_workload(kernel))
            for name, r in res.items():
                sums.setdefault(name, []).append(r.edp)
            ours = res["Flex_Flex_HW"].best
            conv_energy.append(ours.conv_energy_j)
            total_energy.append(ours.total_energy_j)
        per_wl[entry.name] = {k: float(np.mean(v)) for k, v in sums.items()}
    summary = edp_table(per_wl, "Flex_Flex_HW")
    conv_share = float(np.sum(conv_energy) / np.sum(total_energy))
    return {"per_workload": per_wl, "summary": summary, "conv_share": conv_share}


def bench_fig13(once, benchmark):
    def run():
        out = fig13_table()
        rows = []
        for name in PAPER_GEOMEAN:
            s = out["summary"][name]
            rows.append(
                [
                    name,
                    f"{s['geomean_reduction_pct']:.0f}%",
                    f"{PAPER_GEOMEAN[name]:.0f}%",
                    f"{s['max_reduction_pct']:.0f}%",
                    f"{PAPER_MAX[name]:.0f}%",
                ]
            )
        print()
        print(
            render_table(
                ["baseline", "geomean (ours)", "geomean (paper)",
                 "max (ours)", "max (paper)"],
                rows,
                title="Fig. 13: EDP reduction of this work over each baseline",
            )
        )
        print(
            f"conversion energy share of this work: {out['conv_share']:.4%} "
            f"(paper: 0.023% of total system energy)"
        )
        return out

    out = once(run)
    s = out["summary"]
    # Ordering pin: the paper's ranking of baselines by geomean reduction.
    assert (
        s["Fix_Fix_None"]["geomean_reduction_pct"]
        > s["Flex_Fix_HW"]["geomean_reduction_pct"]
        > s["Fix_Fix_None2"]["geomean_reduction_pct"]
        > s["Fix_Flex_HW"]["geomean_reduction_pct"]
    )
    # This work wins against every baseline on geomean.
    for name in PAPER_GEOMEAN:
        assert s[name]["geomean_reduction_pct"] > 0.0
    # Conversion energy is negligible, as Sec. VII-C reports.
    assert out["conv_share"] < 0.01
    benchmark.extra_info["geomean_reductions"] = {
        k: round(v["geomean_reduction_pct"], 1) for k, v in s.items()
    }
