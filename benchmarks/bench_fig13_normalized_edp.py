"""Fig. 13 — SpGEMM and SpMM normalized EDP of every baseline vs this work.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig13_normalized_edp`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig13 = make_bench("fig13_normalized_edp")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig13_normalized_edp"))
