"""Ablation — flexible vs fixed PE buffer partitioning (Sec. IV).

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``ablation_buffer`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_ablation_buffer = make_bench("ablation_buffer")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("ablation_buffer"))
