"""Ablation — flexible vs fixed PE buffer partitioning (Sec. IV).

The paper's first microarchitecture extension lets every buffer entry hold
data *or* metadata.  The counterfactual is a rigid 50/50 split: a dense
stationary column may then only use half the entries (the metadata half
idles), while a CSC column is unchanged (its value:metadata ratio is 1:1).
The ablation measures the K-tiling and cycle cost of that rigidity across
densities.
"""

from __future__ import annotations

from repro.accelerator import AcceleratorConfig, analytical_gemm_stats
from repro.analysis.tables import render_table
from repro.formats.registry import Format


def bench_ablation_buffer(once):
    def run():
        m = k = 4000
        n = 2000
        flexible = AcceleratorConfig.paper_default()
        # Rigid split: dense stationary data sees only half the entries.
        rigid = AcceleratorConfig(pe_buffer_bytes=flexible.pe_buffer_bytes // 2)
        rows = []
        penalties = {}
        for density in (0.6, 0.2, 0.05):
            nnz = int(density * m * k)
            flex_rep = analytical_gemm_stats(
                m, k, n, nnz, k * n, Format.DENSE, Format.DENSE, flexible
            )
            rigid_rep = analytical_gemm_stats(
                m, k, n, nnz, k * n, Format.DENSE, Format.DENSE, rigid
            )
            penalty = rigid_rep.cycles.total_cycles / flex_rep.cycles.total_cycles
            penalties[density] = penalty
            rows.append(
                [
                    f"{density:.0%}",
                    flex_rep.cycles.k_tiles,
                    rigid_rep.cycles.k_tiles,
                    f"{flex_rep.cycles.total_cycles:,}",
                    f"{rigid_rep.cycles.total_cycles:,}",
                    f"{penalty:.2f}x",
                ]
            )
        print()
        print(
            render_table(
                ["density", "k-tiles (flex)", "k-tiles (rigid)",
                 "cycles (flex)", "cycles (rigid)", "penalty"],
                rows,
                title="Ablation: flexible vs rigid 50/50 buffer partition "
                "(dense stationary operand)",
            )
        )
        return penalties

    penalties = once(run)
    # Rigidity always costs cycles for dense stationary operands.
    assert all(p >= 1.0 for p in penalties.values())
    assert max(penalties.values()) > 1.2
