"""Fig. 9 — the three prefix-sum (scan) implementations.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig09_prefix_sum`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig9 = make_bench("fig09_prefix_sum")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig09_prefix_sum"))
