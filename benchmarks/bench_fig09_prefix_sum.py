"""Fig. 9 — the three prefix-sum (scan) implementations.

Regenerates the latency / adder-count / overlay-cost comparison of the
serial-chain, work-efficient and highly-parallel designs, all overlaid on
accelerator hardware structures (Sec. V-A).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.hardware.area import PrefixSumDesign, prefix_sum_overlay
from repro.mint.blocks import PrefixSumUnit


def bench_fig9(once):
    def run():
        rng = np.random.default_rng(0)
        data = rng.integers(0, 50, 4096)
        rows = []
        out = {}
        for design in PrefixSumDesign:
            unit = PrefixSumUnit(design, width=32)
            result, cycles = unit.scan(data)
            assert np.array_equal(result, np.cumsum(data))
            ov = prefix_sum_overlay(design)
            rows.append(
                [
                    design.value,
                    unit.pipeline_depth,
                    unit.adder_count,
                    cycles,
                    f"{ov.area_fraction:.0%}",
                    f"{ov.power_fraction:.0%}",
                ]
            )
            out[design] = (unit.pipeline_depth, unit.adder_count, cycles)
        print()
        print(
            render_table(
                ["design", "pipeline depth", "adders", "cycles (4096 el)",
                 "overlay area", "overlay power"],
                rows,
                title="Fig. 9: prefix-sum designs at width 32 "
                "(paper overlays: serial +2%/+3%, parallel +20%/+27%)",
            )
        )
        return out

    out = once(run)
    depths = {d: v[0] for d, v in out.items()}
    assert (
        depths[PrefixSumDesign.HIGHLY_PARALLEL]
        < depths[PrefixSumDesign.WORK_EFFICIENT]
        < depths[PrefixSumDesign.SERIAL_CHAIN]
    )
