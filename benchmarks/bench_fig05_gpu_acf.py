"""Fig. 5 — GPU execution time / SM util / memory util of four ACF
algorithms across density regions (M = N = K = 11k, Titan-class model).

Paper claims pinned: Dense(A)-Dense(B)-Dense(O) wins from 10% to 100%
density; CSR(A)-CSR(B)-CSR(O) wins from 1e-6% to 0.1%; GEMM's SM
utilization is high (while including zero-valued operations); SpMM is
memory-bound; SpGEMM is latency-bound at extreme sparsity.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.baselines.gpu import GpuModel, MMAlgorithm

DENSITIES = [1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0]
DIMS = (11_000, 11_000, 11_000)


def sweep() -> dict:
    gpu = GpuModel()
    table = {}
    for d in DENSITIES:
        table[d] = {a: gpu.mm_time(a, *DIMS, d) for a in MMAlgorithm}
    return table


def bench_fig5(once):
    def run():
        table = sweep()
        for metric, attr in [
            ("exec time (s)", "seconds"),
            ("SM util", "sm_utilization"),
            ("mem util", "mem_utilization"),
        ]:
            rows = []
            for d in DENSITIES:
                row = [f"{d:.0e}"]
                for a in MMAlgorithm:
                    row.append(f"{getattr(table[d][a], attr):.3g}")
                if attr == "seconds":
                    winner = min(table[d], key=lambda a: table[d][a].seconds)
                    row.append(winner.value)
                rows.append(row)
            headers = ["density"] + [a.value for a in MMAlgorithm]
            if attr == "seconds":
                headers.append("winner")
            print()
            print(render_table(headers, rows, title=f"Fig. 5: {metric}"))
        return table

    table = once(run)
    dense, spgemm = MMAlgorithm.DENSE_DENSE_DENSE, MMAlgorithm.CSR_CSR_CSR
    for d in (0.1, 0.5, 1.0):
        assert min(table[d], key=lambda a: table[d][a].seconds) is dense
    for d in (1e-8, 1e-6, 1e-4, 1e-3):
        assert min(table[d], key=lambda a: table[d][a].seconds) is spgemm
