"""Fig. 5 — GPU execution time / SM util / memory util of four ACF algorithms.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig05_gpu_acf`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig5 = make_bench("fig05_gpu_acf")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig05_gpu_acf"))
