"""Ablation — DRAM bandwidth sensitivity of SAGE's format decisions.

The paper fixes no DRAM bandwidth; our default rate-balances it with the
512-bit input bus.  This sweep shows how the MCF decision ladder shifts as
memory gets faster relative to compute: with abundant bandwidth the
compressed formats' transfer savings matter less, so Dense MCFs creep down
the density range; with scarce bandwidth compression wins everywhere — the
format choice is a *system* property, which is precisely why SAGE takes the
hardware parameters as input (Fig. 1b).
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.hardware.dram import DramChannel
from repro.sage import Sage
from repro.workloads.spec import Kernel, MatrixWorkload

BANDWIDTHS = [16e9, 64e9, 256e9, 1024e9]
DENSITIES = [0.6, 0.2, 0.05, 0.005]


def decision_grid() -> dict:
    grid = {}
    for bw in BANDWIDTHS:
        sage = Sage(dram=DramChannel(bandwidth_bytes_per_s=bw))
        for density in DENSITIES:
            m = k = 2000
            wl = MatrixWorkload(
                name=f"bw{bw:g}-d{density:g}",
                kernel=Kernel.SPMM,
                m=m,
                k=k,
                n=1000,
                nnz_a=max(1, int(density * m * k)),
                nnz_b=k * 1000,
            )
            d = sage.predict_matrix(wl)
            grid[(bw, density)] = d.mcf[0]
    return grid


def bench_ablation_dram(once):
    def run():
        grid = decision_grid()
        rows = []
        for bw in BANDWIDTHS:
            rows.append(
                [f"{bw / 1e9:.0f} GB/s"]
                + [grid[(bw, d)].value for d in DENSITIES]
            )
        print()
        print(
            render_table(
                ["DRAM b/w"] + [f"{d:g}" for d in DENSITIES],
                rows,
                title="Ablation: SAGE's streamed-operand MCF vs DRAM bandwidth "
                "(2k x 2k SpMM)",
            )
        )
        return grid

    grid = once(run)
    # At every bandwidth, extreme densities keep their canonical formats.
    for bw in BANDWIDTHS:
        assert grid[(bw, 0.005)].value in ("CSR", "COO")
    # Scarce bandwidth never prefers a *less* compact format than abundant
    # bandwidth at the same density (compression value is monotone in
    # transfer cost).
    compactness_rank = {"Dense": 0, "ZVC": 1, "RLC": 1, "CSR": 2, "CSC": 2, "COO": 2}
    for d in DENSITIES:
        ranks = [compactness_rank[grid[(bw, d)].value] for bw in BANDWIDTHS]
        assert ranks == sorted(ranks, reverse=True) or len(set(ranks)) == 1
