"""Table III — SAGE's MCF/ACF decisions for the 13-workload suite.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``table03_sage`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_table3 = make_bench("table03_sage")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("table03_sage"))
