"""Table III — SAGE's MCF/ACF decisions for the 13-workload suite.

Prints the paper's published choices next to ours for both scenarios
(SpGEMM/SpTTM with a density-matched sparse factor, SpMM/MTTKRP with a
dense factor) and asserts the aggregate agreement floor.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.sage import Sage
from repro.workloads import MATRIX_SUITE, TENSOR_SUITE, Kernel


def table3() -> dict:
    sage = Sage()
    rows, hits, total = [], 0, 0
    for entry in MATRIX_SUITE:
        for kernel, choice in (
            (Kernel.SPGEMM, entry.spgemm_choice),
            (Kernel.SPMM, entry.spmm_choice),
        ):
            d = sage.predict_matrix(entry.matrix_workload(kernel))
            matches = [
                choice.mcf_t is d.mcf[0],
                choice.acf_t is d.acf[0],
                choice.acf_f is d.acf[1],
            ]
            hits += sum(matches)
            total += 3
            rows.append(
                [
                    entry.name,
                    kernel.value,
                    f"{entry.density_pct:g}%",
                    f"{choice.mcf_t.value}->{d.mcf[0].value}",
                    f"{choice.acf_t.value}->{d.acf[0].value}",
                    f"{choice.acf_f.value}->{d.acf[1].value}",
                    "".join("=" if m else "x" for m in matches),
                ]
            )
    for entry in TENSOR_SUITE:
        for kernel, choice in (
            (Kernel.SPTTM, entry.spgemm_choice),
            (Kernel.MTTKRP, entry.spmm_choice),
        ):
            d = sage.predict_tensor(entry.tensor_workload(kernel))
            matches = [choice.mcf_t is d.mcf[0], choice.acf_t is d.acf[0]]
            hits += sum(matches)
            total += 2
            rows.append(
                [
                    entry.name,
                    kernel.value,
                    f"{entry.density_pct:g}%",
                    f"{choice.mcf_t.value}->{d.mcf[0].value}",
                    f"{choice.acf_t.value}->{d.acf[0].value}",
                    "-",
                    "".join("=" if m else "x" for m in matches),
                ]
            )
    return {"rows": rows, "hits": hits, "total": total}


def bench_table3(once, benchmark):
    def run():
        out = table3()
        print()
        print(
            render_table(
                ["workload", "kernel", "density",
                 "MCFt paper->ours", "ACFt paper->ours", "ACFf paper->ours",
                 "match"],
                out["rows"],
                title="Table III: SAGE decisions, paper vs this reproduction",
            )
        )
        print(f"agreement: {out['hits']}/{out['total']} decision fields")
        return out

    out = once(run)
    assert out["hits"] / out["total"] >= 0.80
    benchmark.extra_info["agreement"] = f"{out['hits']}/{out['total']}"
