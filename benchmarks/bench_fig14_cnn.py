"""Fig. 14 — the ResNet-50/CIFAR-10 convolution case study.

Regenerates (b) this work's per-layer EDP under the three pruning regimes
and (c) the average EDP against every baseline.  Paper claims pinned:
early layers are insensitive to weight pruning (activations dominate);
layers 7-8 benefit most under global pruning (sparser weights -> better MCF
compression and CSC weight buffers); our work beats every baseline, ~70%
average EDP reduction in the paper's model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.baselines import evaluate_all
from repro.workloads.dnn import CONV_LAYERS, PruningStrategy, layer_gemm


def cnn_study() -> dict:
    per_layer: dict[int, dict[str, float]] = {}
    totals: dict[str, float] = {}
    for layer in CONV_LAYERS:
        per_layer[layer.layer_id] = {}
        for strategy in PruningStrategy:
            res = evaluate_all(layer_gemm(layer, strategy))
            per_layer[layer.layer_id][strategy.value] = res["Flex_Flex_HW"].edp
            for name, r in res.items():
                totals[name] = totals.get(name, 0.0) + r.edp
    return {"per_layer": per_layer, "totals": totals}


def bench_fig14(once, benchmark):
    def run():
        out = cnn_study()
        rows = [
            [f"conv{lid}"] + [f"{v:.2e}" for v in strat.values()]
            for lid, strat in out["per_layer"].items()
        ]
        print()
        print(
            render_table(
                ["layer"] + [s.value for s in PruningStrategy],
                rows,
                title="Fig. 14b: this work's EDP per layer and pruning strategy",
            )
        )
        ours = out["totals"]["Flex_Flex_HW"]
        rows = [
            [name, f"{total:.3e}", f"{1 - ours / total:.0%}"]
            for name, total in out["totals"].items()
            if name != "Flex_Flex_HW"
        ]
        print(
            render_table(
                ["baseline", "avg EDP", "our reduction"],
                rows,
                title="Fig. 14c: average EDP vs baselines (paper: ~70% avg reduction)",
            )
        )
        return out

    out = once(run)
    totals = out["totals"]
    ours = totals["Flex_Flex_HW"]
    # This work beats every baseline on the aggregate.
    assert all(ours <= v * 1.0001 for v in totals.values())
    # Global pruning helps most on the late, weight-heavy layers (7-8).
    for lid in (7, 8):
        layer = out["per_layer"][lid]
        assert layer[PruningStrategy.GLOBAL_70.value] <= (
            layer[PruningStrategy.NORMAL.value]
        )
    # Early layer 1 has dense activations: pruning barely moves it.
    l1 = out["per_layer"][1]
    assert l1[PruningStrategy.LAYER_50.value] == (
        pytest_approx(l1[PruningStrategy.NORMAL.value], 0.35)
    )
    benchmark.extra_info["mean_reduction_pct"] = round(
        float(
            np.mean(
                [1 - ours / v for k, v in totals.items() if k != "Flex_Flex_HW"]
            )
        )
        * 100,
        1,
    )


def pytest_approx(value: float, rel: float):
    import pytest

    return pytest.approx(value, rel=rel)
