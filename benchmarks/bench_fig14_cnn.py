"""Fig. 14 — the ResNet-50/CIFAR-10 convolution case study.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig14_cnn`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig14 = make_bench("fig14_cnn")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig14_cnn"))
