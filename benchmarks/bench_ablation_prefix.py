"""Ablation — prefix-sum design choice inside MINT (Sec. V-A / VII-B).

Sweeps the three Fig. 9 scan designs through a real conversion workload
(the CSR->CSC histogram scan over the Table III column counts) and reports
the latency / adder / overlay trade the paper describes: "a serial chain
prefix sum design can be used instead of a highly parallel prefix sum
design ... longer tail latency; but simpler wiring, fewer muxes, and fewer
active adders".
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.hardware.area import PrefixSumDesign, prefix_sum_overlay
from repro.mint.blocks import PrefixSumUnit
from repro.workloads import MATRIX_SUITE


def bench_ablation_prefix(once):
    def run():
        rng = np.random.default_rng(0)
        rows = []
        cycles_by_design = {}
        for design in PrefixSumDesign:
            total_cycles = 0
            total_adds = 0
            for entry in MATRIX_SUITE[:6]:
                k = entry.dims[1]
                counts = rng.integers(0, 50, min(k, 50_000))
                unit = PrefixSumUnit(design, width=32)
                _, cycles = unit.scan(counts)
                total_cycles += cycles
                total_adds += unit.stats.int_adds
            ov = prefix_sum_overlay(design)
            rows.append(
                [
                    design.value,
                    total_cycles,
                    total_adds,
                    f"{ov.area_fraction:.0%}",
                    f"{ov.power_fraction:.0%}",
                ]
            )
            cycles_by_design[design] = total_cycles
        print()
        print(
            render_table(
                ["design", "scan cycles (6 workloads)", "adds performed",
                 "overlay area", "overlay power"],
                rows,
                title="Ablation: prefix-sum design inside MINT",
            )
        )
        return cycles_by_design

    cycles = once(run)
    # The trade exists: the cheapest-overlay design is the slowest.
    assert cycles[PrefixSumDesign.SERIAL_CHAIN] >= (
        cycles[PrefixSumDesign.HIGHLY_PARALLEL]
    )
