"""Fig. 4 — relative DRAM-transfer energy of each MCF across density.

Regenerates: (a-i) the 11k x 11k 32-bit sweep normalized to CSR, (a-ii) the
8-bit variant, and (b) the extreme-sparsity K-dimension sweeps with M=1k at
16-bit.  The paper's claims pinned here: the best-format ladder at the four
stars is COO / RLC / ZVC / Dense, and quantization raises the metadata
share.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.compactness import crossover_density, transfer_energy_sweep
from repro.analysis.tables import render_table
from repro.formats.registry import Format

FMTS = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC, Format.ZVC]
DENSITIES = [1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0]


def fig4a(dtype_bits: int) -> dict:
    dims = (11_000, 11_000)
    sweep = transfer_energy_sweep(dims, DENSITIES, FMTS, dtype_bits)
    best = [
        min(FMTS, key=lambda f: sweep[f][i]).value for i in range(len(DENSITIES))
    ]
    return {"sweep": sweep, "best": best}


def fig4b(density: float) -> dict:
    rows = []
    for k in [1_000, 10_000, 100_000, 1_000_000]:
        dims = (1_000, k)
        nnz = max(1, int(density * dims[0] * dims[1]))
        from repro.analysis.compactness import storage_bits

        bits = {f: storage_bits(f, dims, nnz, 16) for f in FMTS}
        ref = bits[Format.CSR]
        rows.append(
            [f"K={k:,}"] + [f"{bits[f] / ref:.3f}" for f in FMTS]
        )
    return {"rows": rows}


def bench_fig4(once):
    def run():
        out = {}
        for bits, tag in [(32, "a-i"), (8, "a-ii")]:
            r = fig4a(bits)
            rows = [
                [f"{d:.0e}"] + [f"{r['sweep'][f][i]:.3f}" for f in FMTS] + [r["best"][i]]
                for i, d in enumerate(DENSITIES)
            ]
            print()
            print(
                render_table(
                    ["density"] + [f.value for f in FMTS] + ["best"],
                    rows,
                    title=f"Fig. 4{tag}: energy relative to CSR, 11k x 11k, {bits}-bit",
                )
            )
            out[tag] = r
        for dens, tag in [(1e-5, "b-i"), (1e-2, "b-ii")]:
            r = fig4b(dens)
            print()
            print(
                render_table(
                    ["K"] + [f.value for f in FMTS],
                    r["rows"],
                    title=f"Fig. 4{tag}: relative bits, M=1k, 16-bit, density {dens:g}",
                )
            )
        out["crossover_csr_zvc"] = crossover_density(
            Format.CSR, Format.ZVC, (11_000, 11_000)
        )
        out["crossover_coo_csr"] = crossover_density(
            Format.COO, Format.CSR, (11_000, 11_000)
        )
        print(
            f"\ncrossovers: CSR/ZVC at {out['crossover_csr_zvc']:.3%} density, "
            f"COO/CSR at {out['crossover_coo_csr']:.2e}"
        )
        return out

    result = once(run)
    # Paper pins: the four stars.
    stars = {1e-8: "COO", 0.10: "RLC", 0.50: "ZVC", 1.0: "Dense"}
    for d, expected in stars.items():
        i = DENSITIES.index(d)
        assert result["a-i"]["best"][i] == expected, (d, result["a-i"]["best"][i])
