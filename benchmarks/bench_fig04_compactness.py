"""Fig. 4 — relative DRAM-transfer energy of each MCF across density.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig04_compactness`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig4 = make_bench("fig04_compactness")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig04_compactness"))
