"""Fig. 7b — area overhead of the extended PE over the base PE.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig07_pe_overhead`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig7 = make_bench("fig07_pe_overhead")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig07_pe_overhead"))
