"""Fig. 7b — area overhead of the extended PE over the base PE.

Paper claim pinned: the flexible-ACF extension (metadata comparators,
one-hot-to-binary encoder, valid-data address generator, bus flags) adds
~10% to a PE with a 128 B buffer.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.hardware.area import DEFAULT_AREA, pe_breakdown


def bench_fig7(once):
    def run():
        bd = pe_breakdown(DEFAULT_AREA, buffer_bytes=128, lanes=8)
        rows = [
            ["vector MAC lanes (8x)", f"{bd.mac_lanes:.5f}", "base"],
            ["128 B weight buffer", f"{bd.buffer:.5f}", "base"],
            ["control + registers", f"{bd.control:.5f}", "base"],
            ["metadata comparators (8x)", f"{bd.comparators:.5f}", "extension"],
            ["one-hot-to-binary encoder", f"{bd.encoder:.5f}", "extension"],
            ["valid-data address generator", f"{bd.addr_gen:.5f}", "extension"],
            ["bus data/metadata flags", f"{bd.flags:.5f}", "extension"],
            ["base PE total", f"{bd.base:.5f}", ""],
            ["extended PE total", f"{bd.total:.5f}", ""],
        ]
        overhead = bd.extension / bd.base
        print()
        print(render_table(["component", "area mm^2", "class"], rows,
                           title="Fig. 7b: extended PE area breakdown"))
        print(f"extension overhead: {overhead:.1%} (paper: ~10%)")
        # Scaling: larger buffers dilute the fixed extension cost.
        for buf in (128, 256, 512):
            frac = DEFAULT_AREA.pe_overhead_fraction(buffer_bytes=buf)
            print(f"  buffer {buf:>4} B -> overhead {frac:.1%}")
        return overhead

    overhead = once(run)
    assert 0.08 <= overhead <= 0.12
