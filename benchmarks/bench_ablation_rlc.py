"""Ablation — RLC zero-run field width (the Fig. 3 format's one knob).

The fixed-width run field trades per-entry metadata (wider field) against
overflow padding entries (narrower field).  The paper's RLC band (best MCF
around the 10% star) only emerges for sensible widths; this sweep shows the
5-bit default (Eyeriss's choice) is on the plateau.
"""

from __future__ import annotations

from repro.analysis.compactness import storage_bits
from repro.analysis.tables import render_table
from repro.formats.registry import Format


def bench_ablation_rlc(once):
    def run():
        dims = (11_000, 11_000)
        size = dims[0] * dims[1]
        densities = [0.5, 0.2, 0.1, 0.05, 0.01, 0.001]
        rows = []
        table = {}
        for run_bits in (2, 3, 4, 5, 6, 8, 12):
            row = [f"{run_bits} bits"]
            for d in densities:
                nnz = int(d * size)
                rlc = storage_bits(Format.RLC, dims, nnz, 32, run_bits=run_bits)
                csr = storage_bits(Format.CSR, dims, nnz, 32)
                row.append(f"{rlc / csr:.2f}")
                table[(run_bits, d)] = rlc / csr
            rows.append(row)
        print()
        print(
            render_table(
                ["run field"] + [f"{d:g}" for d in densities],
                rows,
                title="Ablation: RLC/CSR footprint ratio vs run-field width "
                "(11k x 11k, 32-bit; <1 means RLC wins)",
            )
        )
        return table

    table = once(run)
    # 5-bit runs keep RLC ahead of CSR at the 10% star...
    assert table[(5, 0.1)] < 1.0
    # ...while a 2-bit field pays heavy padding at lower density...
    assert table[(2, 0.01)] > table[(5, 0.01)]
    # ...and the practical widths (<= 6 bits) all lose in the CSR regime.
    # (A 12-bit field technically stays competitive — it degenerates into a
    # delta-coded coordinate list — but costs 12 metadata bits everywhere.)
    assert all(table[(rb, 0.001)] > 1.0 for rb in (2, 3, 4, 5, 6))
    assert table[(12, 0.5)] > table[(5, 0.5)]
