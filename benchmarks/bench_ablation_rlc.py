"""Ablation — RLC zero-run field width (the Fig. 3 format's one knob).

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``ablation_rlc`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_ablation_rlc = make_bench("ablation_rlc")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("ablation_rlc"))
