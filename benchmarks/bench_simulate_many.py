"""Batched cycle simulation: vectorized beat plans vs the seed per-beat path.

Runs one mixed batch of GEMMs — every streamable ACF in the protocol
registry (Dense / CSR / CSC / COO / ELL) against both stationary layouts
(Dense / CSC) at two densities — three ways:

* **reference** — the seed engine: materialized ``Beat`` objects driving
  one Python ``PE`` object per column, sequentially per job;
* **vectorized** — the registry's array-resident ``BeatPlan`` path,
  sequentially per job;
* **batch** — ``WeightStationarySimulator.simulate_many`` fanning the
  vectorized engine across the shared fork pool.

Both engines are asserted report-identical per job (the differential
check that keeps the vectorized path honest), the acceptance bar is a
>= 5x vectorized-vs-reference speedup, and the headline numbers land in
``benchmarks/out/simulate_many.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.protocols import streamable_formats
from repro.accelerator.simulator import WeightStationarySimulator
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format, matrix_class
from repro.workloads.synthetic import random_sparse_matrix

OUT_PATH = Path(__file__).parent / "out" / "simulate_many.json"

M, K, N = 160, 160, 96
DENSITIES = (0.05, 0.25)

# Large-operand scenario: one dense stationary operand shared by the whole
# batch (the weight-stationary sweep shape), thin streamed operands.  Here
# serialization dominates per-job cost: the classic pickle wire re-copies
# the stationary matrix into every submit, while the zero-copy plane ships
# it once and the identity-stable view lets the scheduler's stationary
# memo amortize layout preparation + K-tiling across the batch.
LARGE_M, LARGE_K, LARGE_N = 2, 16384, 96
LARGE_NNZ_A = 64
LARGE_JOBS = 32
LARGE_PROCESSES = 2


def _jobs():
    """The benchmark batch: every streamable ACF x {Dense, CSC} stationary."""
    jobs = []
    for seed, density in enumerate(DENSITIES):
        nnz_a = max(1, int(density * M * K))
        a_dense = random_sparse_matrix(M, K, nnz_a, seed)
        b_dense = random_sparse_matrix(K, N, max(1, int(density * K * N)),
                                       seed + 100)
        for acf_a in streamable_formats():
            a = matrix_class(acf_a).from_dense(a_dense)
            for acf_b, b in (
                (Format.DENSE, DenseMatrix.from_dense(b_dense)),
                (Format.CSC, CscMatrix.from_dense(b_dense)),
            ):
                jobs.append((a, acf_a, b, acf_b))
    return jobs


def _large_operand_jobs():
    """One shared multi-megabyte stationary B, thin streamed A per job."""
    b = DenseMatrix.from_dense(
        random_sparse_matrix(LARGE_K, LARGE_N, LARGE_K * LARGE_N, 7)
    )
    jobs = []
    for seed in range(LARGE_JOBS):
        a = CsrMatrix.from_dense(
            random_sparse_matrix(LARGE_M, LARGE_K, LARGE_NNZ_A, seed)
        )
        jobs.append((a, Format.CSR, b, Format.DENSE))
    return jobs, b.values.nbytes


def measure_large_operand() -> dict:
    """Wall-clock the same batch over both wires; assert bit-identical.

    The PE scratchpad is sized so one stationary column fits untiled —
    the scenario benchmarks the transport, not the tiling sweep.
    ``processes`` is explicit because a 1-CPU host would otherwise
    degrade every path to sequential and measure nothing.
    """
    sim = WeightStationarySimulator(
        AcceleratorConfig(pe_buffer_bytes=1 << 17)
    )
    jobs, operand_bytes = _large_operand_jobs()

    def timed(**kwargs):
        start = time.perf_counter()
        out = sim.simulate_many(jobs, **kwargs)
        return out, time.perf_counter() - start

    timed(processes=1)  # warm numpy / allocator before timing
    sequential, sequential_s = timed(processes=1)
    pickled, pickle_s = timed(processes=LARGE_PROCESSES, transport="pickle")
    shared, shm_s = timed(processes=LARGE_PROCESSES, transport="shm")
    for (out_s, rep_s), (out_p, rep_p), (out_z, rep_z) in zip(
        sequential, pickled, shared
    ):
        assert np.array_equal(out_s, out_p) and np.array_equal(out_s, out_z)
        assert rep_s == rep_p == rep_z

    return {
        "jobs": len(jobs),
        "shape": [LARGE_M, LARGE_K, LARGE_N],
        "stationary_mbytes": round(operand_bytes / 1e6, 1),
        "processes": LARGE_PROCESSES,
        "sequential_s": sequential_s,
        "pickle_s": pickle_s,
        "shm_s": shm_s,
        "speedup_shm_vs_pickle": pickle_s / shm_s,
        "speedup_shm_vs_sequential": sequential_s / shm_s,
    }


def measure() -> dict:
    sim = WeightStationarySimulator()
    jobs = _jobs()

    t0 = time.perf_counter()
    reference = [sim.run_gemm(*job, engine="reference") for job in jobs]
    reference_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vectorized = [sim.run_gemm(*job, engine="vectorized") for job in jobs]
    vectorized_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = sim.simulate_many(jobs)
    batch_s = time.perf_counter() - t0

    for (_, ref), (_, vec), (_, bat) in zip(reference, vectorized, batched):
        assert vec.cycles == ref.cycles and bat.cycles == ref.cycles
        assert vec.energy == ref.energy and bat.energy == ref.energy

    result = {
        "jobs": len(jobs),
        "shape": [M, K, N],
        "densities": list(DENSITIES),
        "streamed_acfs": [f.value for f in streamable_formats()],
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "batch_s": batch_s,
        "speedup_vectorized_vs_reference": reference_s / vectorized_s,
        "speedup_batch_vs_reference": reference_s / batch_s,
        "large_operand": measure_large_operand(),
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_simulate_many(once, benchmark):
    out = once(measure)
    print()
    print(f"{'engine':>20} | {'total':>9} | {'jobs/s':>7}")
    for label, key in (
        ("reference (seed)", "reference_s"),
        ("vectorized", "vectorized_s"),
        ("simulate_many", "batch_s"),
    ):
        seconds = out[key]
        print(f"{label:>20} | {seconds * 1e3:>7.1f}ms | "
              f"{out['jobs'] / seconds:>7.1f}")
    print(
        f"vectorized vs seed per-beat path: "
        f"{out['speedup_vectorized_vs_reference']:.1f}x, "
        f"batched: {out['speedup_batch_vs_reference']:.1f}x"
    )
    large = out["large_operand"]
    print(
        f"large-operand ({large['stationary_mbytes']}MB stationary x "
        f"{large['jobs']} jobs): sequential {large['sequential_s']:.2f}s, "
        f"pickle {large['pickle_s']:.2f}s, shm {large['shm_s']:.2f}s "
        f"-> zero-copy {large['speedup_shm_vs_pickle']:.1f}x vs pickle"
    )
    print(f"wrote {OUT_PATH}")
    assert out["speedup_vectorized_vs_reference"] >= 5.0
    assert large["speedup_shm_vs_pickle"] >= 3.0
    benchmark.extra_info["speedup_vectorized_vs_reference"] = round(
        out["speedup_vectorized_vs_reference"], 1
    )
    benchmark.extra_info["speedup_batch_vs_reference"] = round(
        out["speedup_batch_vs_reference"], 1
    )
    benchmark.extra_info["speedup_shm_vs_pickle"] = round(
        large["speedup_shm_vs_pickle"], 1
    )
