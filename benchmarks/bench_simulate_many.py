"""Batched cycle simulation: vectorized beat plans vs the seed per-beat path.

Runs one mixed batch of GEMMs — every streamable ACF in the protocol
registry (Dense / CSR / CSC / COO / ELL) against both stationary layouts
(Dense / CSC) at two densities — three ways:

* **reference** — the seed engine: materialized ``Beat`` objects driving
  one Python ``PE`` object per column, sequentially per job;
* **vectorized** — the registry's array-resident ``BeatPlan`` path,
  sequentially per job;
* **batch** — ``WeightStationarySimulator.simulate_many`` fanning the
  vectorized engine across the shared fork pool.

Both engines are asserted report-identical per job (the differential
check that keeps the vectorized path honest), the acceptance bar is a
>= 5x vectorized-vs-reference speedup, and the headline numbers land in
``benchmarks/out/simulate_many.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.accelerator.protocols import streamable_formats
from repro.accelerator.simulator import WeightStationarySimulator
from repro.formats.csc import CscMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format, matrix_class
from repro.workloads.synthetic import random_sparse_matrix

OUT_PATH = Path(__file__).parent / "out" / "simulate_many.json"

M, K, N = 160, 160, 96
DENSITIES = (0.05, 0.25)


def _jobs():
    """The benchmark batch: every streamable ACF x {Dense, CSC} stationary."""
    jobs = []
    for seed, density in enumerate(DENSITIES):
        nnz_a = max(1, int(density * M * K))
        a_dense = random_sparse_matrix(M, K, nnz_a, seed)
        b_dense = random_sparse_matrix(K, N, max(1, int(density * K * N)),
                                       seed + 100)
        for acf_a in streamable_formats():
            a = matrix_class(acf_a).from_dense(a_dense)
            for acf_b, b in (
                (Format.DENSE, DenseMatrix.from_dense(b_dense)),
                (Format.CSC, CscMatrix.from_dense(b_dense)),
            ):
                jobs.append((a, acf_a, b, acf_b))
    return jobs


def measure() -> dict:
    sim = WeightStationarySimulator()
    jobs = _jobs()

    t0 = time.perf_counter()
    reference = [sim.run_gemm(*job, engine="reference") for job in jobs]
    reference_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vectorized = [sim.run_gemm(*job, engine="vectorized") for job in jobs]
    vectorized_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = sim.simulate_many(jobs)
    batch_s = time.perf_counter() - t0

    for (_, ref), (_, vec), (_, bat) in zip(reference, vectorized, batched):
        assert vec.cycles == ref.cycles and bat.cycles == ref.cycles
        assert vec.energy == ref.energy and bat.energy == ref.energy

    result = {
        "jobs": len(jobs),
        "shape": [M, K, N],
        "densities": list(DENSITIES),
        "streamed_acfs": [f.value for f in streamable_formats()],
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "batch_s": batch_s,
        "speedup_vectorized_vs_reference": reference_s / vectorized_s,
        "speedup_batch_vs_reference": reference_s / batch_s,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_simulate_many(once, benchmark):
    out = once(measure)
    print()
    print(f"{'engine':>20} | {'total':>9} | {'jobs/s':>7}")
    for label, key in (
        ("reference (seed)", "reference_s"),
        ("vectorized", "vectorized_s"),
        ("simulate_many", "batch_s"),
    ):
        seconds = out[key]
        print(f"{label:>20} | {seconds * 1e3:>7.1f}ms | "
              f"{out['jobs'] / seconds:>7.1f}")
    print(
        f"vectorized vs seed per-beat path: "
        f"{out['speedup_vectorized_vs_reference']:.1f}x, "
        f"batched: {out['speedup_batch_vs_reference']:.1f}x"
    )
    print(f"wrote {OUT_PATH}")
    assert out["speedup_vectorized_vs_reference"] >= 5.0
    benchmark.extra_info["speedup_vectorized_vs_reference"] = round(
        out["speedup_vectorized_vs_reference"], 1
    )
    benchmark.extra_info["speedup_batch_vs_reference"] = round(
        out["speedup_batch_vs_reference"], 1
    )
