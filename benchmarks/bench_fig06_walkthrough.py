"""Fig. 6 — the walkthrough example, cycle-exact.

Regenerates the streaming cycle counts of the three ACFs on the paper's
4-PE, 5-slot-bus, 8-entry-buffer configuration (8 / 3 / 4 cycles to send
matrix A) and the full cycle/energy grid over every supported ACF pair.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.analysis.tables import render_table
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import Format


def fig6_operands():
    a = np.zeros((4, 8))
    a[0, 0], a[0, 2], a[0, 4], a[3, 5] = 1.0, 2.0, 3.0, 4.0
    b = np.zeros((8, 4))
    for r, c, v in [
        (0, 0, 1.0), (0, 1, 2.0), (2, 0, 3.0), (3, 2, 4.0),
        (4, 0, 5.0), (5, 2, 6.0), (5, 3, 7.0), (7, 1, 8.0),
    ]:
        b[r, c] = v
    return a, b


ENCODERS = {
    Format.DENSE: DenseMatrix,
    Format.CSR: CsrMatrix,
    Format.COO: CooMatrix,
    Format.CSC: CscMatrix,
}


def bench_fig6(once, benchmark):
    def run():
        a, b = fig6_operands()
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        stream = {
            fmt: sim.stream_cycles_only(ENCODERS[fmt].from_dense(a), fmt)
            for fmt in (Format.DENSE, Format.CSR, Format.COO)
        }
        rows = []
        for acf_a, enc in ENCODERS.items():
            for acf_b in (Format.DENSE, Format.CSC):
                b_enc = (
                    CscMatrix.from_dense(b)
                    if acf_b is Format.CSC
                    else DenseMatrix.from_dense(b)
                )
                out, rep = sim.run_gemm(enc.from_dense(a), acf_a, b_enc, acf_b)
                assert np.allclose(out, a @ b)
                c = rep.cycles
                rows.append(
                    [
                        f"{acf_a.value}(A)-{acf_b.value}(B)",
                        c.stream_cycles,
                        c.load_cycles,
                        c.drain_cycles,
                        c.total_cycles,
                        c.issued_macs,
                        f"{c.utilization:.2f}",
                        f"{rep.energy.total_j:.2e}",
                    ]
                )
        print()
        print(
            "Fig. 6 stream cycles (paper: Dense=8, CSR=3, COO=4): "
            + ", ".join(f"{f.value}={v}" for f, v in stream.items())
        )
        print(
            render_table(
                ["ACF pair", "stream", "load", "drain", "total", "MACs", "util", "energy J"],
                rows,
                title="Fig. 6 grid on the walkthrough accelerator",
            )
        )
        return stream

    stream = once(run)
    assert stream[Format.DENSE] == 8
    assert stream[Format.CSR] == 3
    assert stream[Format.COO] == 4
    benchmark.extra_info["stream_cycles"] = {
        f.value: v for f, v in stream.items()
    }
