"""Fig. 6 — the walkthrough example, cycle-exact, over every ACF pair.

Ported to ``repro.xp``: this file is a thin shim over the registered
experiment ``fig06_walkthrough`` (scenario matrix, measure function and paper-claim
checks live in ``src/repro/xp/paper.py``).  Run the whole suite instead
with ``repro xp run --all``.
"""

from __future__ import annotations

from _shim import make_bench

bench_fig6 = make_bench("fig06_walkthrough")

if __name__ == "__main__":
    from _shim import main

    raise SystemExit(main("fig06_walkthrough"))
