"""Observability overhead: the instrumented predict hot path vs REPRO_OBS=off.

The obs plane's contract is that it may ride the hot path permanently:
every ``Session.predict`` enters spans and bumps counters even when
nobody is tracing.  This bench measures that tax directly — the same
warm predict loop with the plane on (default) and off
(:func:`repro.obs.set_enabled`, the runtime form of ``REPRO_OBS=off``) —
and pins the ratio in ``check_floors.py``: ``off_vs_on_ratio >= 0.95``,
i.e. instrumentation costs at most ~5%.

Min-of-trials on both sides filters scheduler noise; modes are
interleaved so drift (thermal, page cache) hits both equally.  A sample
Chrome trace of one traced run is exported alongside the JSON so the CI
bench-smoke job uploads a viewable artifact.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

try:  # standalone runs without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import Session
from repro.obs import export_chrome_trace, set_enabled, start_trace, stop_trace
from repro.workloads.spec import Kernel, MatrixWorkload

OUT_PATH = Path(__file__).parent / "out" / "obs_overhead.json"
TRACE_PATH = Path(__file__).parent / "out" / "obs_trace_sample.json"

TRIALS = 6
PREDICTS_PER_TRIAL = 5


def _wl(nnz: int, tag: str) -> MatrixWorkload:
    return MatrixWorkload(f"obs-{tag}", Kernel.SPMM, m=512, k=512, n=256,
                          nnz_a=nnz, nnz_b=512 * 256)


def measure() -> dict:
    # Every predict sees a fresh fingerprint, so each one runs the full
    # MCF/ACF search — the path the spans and counters actually ride.
    # (A memo-hit loop would measure instrumentation against a ~30 us
    # dictionary lookup, where no Python-level telemetry can stay under
    # 5%; the contract is about the cost on real prediction work.)
    fresh = iter(range(100_000))

    def workloads(tag: str) -> list[MatrixWorkload]:
        return [
            _wl(9_000 + next(fresh), f"{tag}-{i}")
            for i in range(PREDICTS_PER_TRIAL)
        ]

    with Session() as session:
        session.predict(_wl(8_500, "warm"))  # warm shared planner caches

        def trial(batch: list[MatrixWorkload]) -> float:
            t0 = time.perf_counter()
            for wl in batch:
                session.predict(wl)
            return time.perf_counter() - t0

        on_samples: list[float] = []
        off_samples: list[float] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()  # GC pauses are the dominant noise at this scale
        try:
            for round_index in range(TRIALS):
                # Alternate which mode goes first so monotonic drift
                # (cache growth, CPU frequency) cancels across rounds.
                first_on = round_index % 2 == 0
                for mode_on in (first_on, not first_on):
                    set_enabled(mode_on)
                    samples = on_samples if mode_on else off_samples
                    samples.append(
                        trial(workloads("on" if mode_on else "off"))
                    )
                gc.collect()
        finally:
            set_enabled(True)
            if gc_was_enabled:
                gc.enable()

        # Paired per-round ratios, then the median: a single noisy round
        # (scheduler preemption, container neighbors) cannot move the
        # headline the way it moves a min- or mean-of-samples estimate.
        paired = sorted(
            off / on for off, on in zip(off_samples, on_samples)
        )
        ratio = paired[len(paired) // 2]

        # Sample trace artifact: one traced end-to-end run, exported in
        # Chrome trace-event form for the CI artifact upload.
        start_trace()
        try:
            session.run(_wl(8_500, "trace"))
        finally:
            events = stop_trace()

    result = {
        "predicts_per_trial": PREDICTS_PER_TRIAL,
        "trials": TRIALS,
        "on_s": min(on_samples),
        "off_s": min(off_samples),
        "overhead_pct": 100.0 * (1.0 / ratio - 1.0),
        # The floored headline: off/on, so slower-when-on pushes it
        # below 1.0 and under the 0.95 floor at >5% overhead.
        "off_vs_on_ratio": ratio,
        "trace_sample_events": len(events),
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    export_chrome_trace(events, str(TRACE_PATH))
    return result


def bench_obs_overhead(once, benchmark):
    out = once(measure)
    print()
    print(
        f"predict hot path: on {out['on_s'] * 1e3:.1f} ms / "
        f"off {out['off_s'] * 1e3:.1f} ms per "
        f"{out['predicts_per_trial']} predicts "
        f"(overhead {out['overhead_pct']:+.2f}%, "
        f"ratio {out['off_vs_on_ratio']:.3f})"
    )
    print(
        f"sample trace: {out['trace_sample_events']} events -> {TRACE_PATH}"
    )
    assert out["trace_sample_events"] >= 4
    assert out["off_vs_on_ratio"] >= 0.95
    benchmark.extra_info["off_vs_on_ratio"] = round(
        out["off_vs_on_ratio"], 4
    )
    benchmark.extra_info["overhead_pct"] = round(out["overhead_pct"], 2)


if __name__ == "__main__":  # standalone: python benchmarks/bench_obs_overhead.py
    print(json.dumps(measure(), indent=2))
