"""Benchmark-harness helpers.

Every bench regenerates one table or figure of the paper: it computes the
series, prints a paper-style table (run pytest with ``-s`` to see it, or
read the captured stdout in the report), records headline values in
``benchmark.extra_info``, and times the regeneration itself via
pytest-benchmark.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Time *fn* with a single warm run (benches are deterministic models)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn):
        return run_once(benchmark, fn)

    return _run
