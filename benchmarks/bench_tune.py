"""Tune-sweep resume: cold grid sweep vs artifact-cache resume.

A ``repro tune`` sweep keys every (point, suite, fidelity) evaluation
into the xp artifact store, so a resumed sweep — same space, same suite
— answers every cell from content-hashed cache and re-executes nothing.
This bench times the CI smoke sweep cold against a scratch store, then
resumed, and records the speedup plus the front shape in
``benchmarks/out/tune.json`` for ``check_floors.py``.

The acceptance bar: resume re-executes **zero** cells and lands well
above the conservative 3x floor (measured ~40-100x: a resume pays JSON
loads where the cold pass pays whole SAGE sweeps per point).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

try:  # standalone runs without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.tune import TuneConfig, run_tune, space

OUT_DIR = Path(__file__).parent / "out"
OUT_PATH = OUT_DIR / "tune.json"


def measure() -> dict:
    with tempfile.TemporaryDirectory() as scratch:
        base = dict(
            suite="smoke",
            store_root=f"{scratch}/store",
            out_dir=scratch,
            report=False,
        )
        t0 = time.perf_counter()
        cold = run_tune(space("smoke"), TuneConfig(**base))
        cold_s = time.perf_counter() - t0
        assert cold.ok and cold.cached == 0, cold.record()

        t0 = time.perf_counter()
        resumed = run_tune(space("smoke"), TuneConfig(resume=True, **base))
        resume_s = time.perf_counter() - t0
        assert resumed.ok, resumed.record()

    result = {
        "space": "smoke",
        "suite": "smoke",
        "points": len(cold.entries),
        "cold_s": cold_s,
        "resume_s": resume_s,
        "speedup_resume_vs_cold": cold_s / resume_s,
        "resume_executed": resumed.executed,
        "resume_cached": resumed.cached,
        "front_size": len(cold.front),
        "hypervolume": round(cold.hypervolume, 4),
        "anchor_on_front": any(e.is_anchor for e in cold.front_entries()),
    }
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def bench_tune(once, benchmark):
    out = once(measure)
    print()
    print(f"{'pass':>14} | {'total':>9}")
    print(f"{'cold sweep':>14} | {out['cold_s']:>8.2f}s")
    print(f"{'resume':>14} | {out['resume_s']:>8.2f}s")
    print(
        f"resume vs cold: {out['speedup_resume_vs_cold']:.1f}x over "
        f"{out['points']} points; resume re-executed "
        f"{out['resume_executed']} cells; front {out['front_size']} "
        f"(hypervolume {out['hypervolume']:g})"
    )
    print(f"wrote {OUT_PATH}")
    # The regression gate is check_floors.py's conservative 3.0 floor on
    # the recorded JSON; the structural invariants are asserted here.
    assert out["resume_executed"] == 0
    assert out["resume_cached"] == out["points"]
    assert out["front_size"] >= 2
    benchmark.extra_info["speedup_resume_vs_cold"] = round(
        out["speedup_resume_vs_cold"], 2
    )
    benchmark.extra_info["points"] = out["points"]
